package shard

import (
	"testing"

	"spatialkeyword"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/geo"
)

// TestShardedMatchesSingleEngine is the correctness contract: a sharded
// engine with N>1 shards must return the same results as one engine holding
// all the data, for every query type, on the seed datasets — including
// after deletions. Distance/score ties are compared set-wise (see
// sameResults); everything else must match exactly.
func TestShardedMatchesSingleEngine(t *testing.T) {
	specs := []dataset.Spec{
		dataset.Restaurants(0.001),
		dataset.Hotels(0.0008),
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rows, stats, bounds := loadDataset(t, spec)
			cfg := spatialkeyword.Config{SignatureBytes: 16}

			single, err := spatialkeyword.NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			grid, err := New(cfg, Options{Shards: 4, Bounds: bounds})
			if err != nil {
				t.Fatal(err)
			}
			hashed, err := New(cfg, Options{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			fill(t, single, rows)
			fill(t, grid, rows)
			fill(t, hashed, rows)

			// Delete a deterministic subset so deletion filtering and idf
			// semantics (deleted docs keep counting) are both exercised.
			for id := uint64(0); id < uint64(len(rows)); id += 7 {
				if err := single.Delete(id); err != nil {
					t.Fatal(err)
				}
				if err := grid.Delete(id); err != nil {
					t.Fatal(err)
				}
				if err := hashed.Delete(id); err != nil {
					t.Fatal(err)
				}
			}

			points := queryPoints(rows, 12, 42)
			kwSets := keywordSets(stats, 12, 2, 99)
			engines := []struct {
				name string
				s    *ShardedEngine
			}{{"grid4", grid}, {"hash3", hashed}}

			for qi, p := range points {
				kws := kwSets[qi]
				for _, k := range []int{1, 5, 20} {
					want, err := single.TopK(k, p, kws...)
					if err != nil {
						t.Fatal(err)
					}
					for _, e := range engines {
						got, err := e.s.TopK(k, p, kws...)
						if err != nil {
							t.Fatal(err)
						}
						sameResults(t, e.name+" TopK", want, got)
						gotS, err := e.s.TopKSerial(k, p, kws...)
						if err != nil {
							t.Fatal(err)
						}
						sameResults(t, e.name+" TopKSerial", want, gotS)
					}
				}

				wantR, err := single.TopKRanked(10, p, kws...)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range engines {
					gotR, err := e.s.TopKRanked(10, p, kws...)
					if err != nil {
						t.Fatal(err)
					}
					sameRanked(t, e.name+" TopKRanked", wantR, gotR)
					gotRS, err := e.s.TopKRankedSerial(10, p, kws...)
					if err != nil {
						t.Fatal(err)
					}
					sameRanked(t, e.name+" TopKRankedSerial", wantR, gotRS)
				}

				// Area queries around the query point.
				lo := []float64{p[0] - 200, p[1] - 200}
				hi := []float64{p[0] + 200, p[1] + 200}
				wantA, err := single.TopKArea(8, lo, hi, kws...)
				if err != nil {
					t.Fatal(err)
				}
				wantW, err := single.WithinArea(lo, hi, kws[:1]...)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range engines {
					gotA, err := e.s.TopKArea(8, lo, hi, kws...)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, e.name+" TopKArea", wantA, gotA)
					gotW, err := e.s.WithinArea(lo, hi, kws[:1]...)
					if err != nil {
						t.Fatal(err)
					}
					if len(gotW) != len(wantW) {
						t.Fatalf("%s WithinArea = %d results, want %d", e.name, len(gotW), len(wantW))
					}
					for i := range wantW {
						if gotW[i].Object.ID != wantW[i].Object.ID {
							t.Fatalf("%s WithinArea[%d] = id %d, want %d",
								e.name, i, gotW[i].Object.ID, wantW[i].Object.ID)
						}
					}
				}
			}
		})
	}
}

// TestShardedEarlyStopStillExact drives the atomic-bound early stop hard: a
// tight cluster on one shard with the query centered there means the other
// shards' best candidates can never beat the global k-th, so they must stop
// after peeking — and the answer must still be exact.
func TestShardedEarlyStopStillExact(t *testing.T) {
	bounds := geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(1000, 1000))
	cfg := spatialkeyword.Config{SignatureBytes: 16}
	single, err := spatialkeyword.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(cfg, Options{Shards: 4, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	var rows []spatialkeyword.Object
	// Dense cluster in the south-west cell…
	for i := 0; i < 50; i++ {
		rows = append(rows, spatialkeyword.Object{
			Point: []float64{10 + float64(i%7), 10 + float64(i/7)},
			Text:  "harbor fish market pier",
		})
	}
	// …and sparse matches elsewhere.
	for i := 0; i < 30; i++ {
		rows = append(rows, spatialkeyword.Object{
			Point: []float64{600 + float64(i*13%350), 600 + float64(i*29%350)},
			Text:  "harbor fish restaurant",
		})
	}
	fill(t, single, rows)
	fill(t, sharded, rows)

	want, err := single.TopK(10, []float64{12, 12}, "harbor", "fish")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.TopK(10, []float64{12, 12}, "harbor", "fish")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "clustered TopK", want, got)

	_, qs, err := sharded.TopKWithStats(10, []float64{12, 12}, "harbor", "fish")
	if err != nil {
		t.Fatal(err)
	}
	// The far shards must not have drained their whole object set.
	if qs.ObjectsLoaded >= len(rows) {
		t.Errorf("early stop ineffective: %d objects loaded of %d", qs.ObjectsLoaded, len(rows))
	}
}
