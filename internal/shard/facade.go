package shard

import (
	"errors"

	"spatialkeyword"
	"spatialkeyword/internal/storage"
)

// Catalog facade: the surface internal/skql's executor and cost model
// need, mirroring the single-engine methods of the same names so a
// ShardedEngine can stand behind any skql.Target.

// NumObjects returns the number of global IDs ever assigned, including
// deleted and tombstoned ones. Valid global IDs are [0, NumObjects).
func (s *ShardedEngine) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.assign)
}

// IsDeleted reports whether gid no longer resolves to a live object:
// deleted on its shard, or tombstoned (reserved but never durable).
// Unknown IDs and IDs on an unavailable shard report false — reads of
// those fail with their own typed errors.
func (s *ShardedEngine) IsDeleted(gid uint64) bool {
	s.mu.RLock()
	if gid >= uint64(len(s.assign)) {
		s.mu.RUnlock()
		return false
	}
	loc := s.assign[gid]
	s.mu.RUnlock()
	if loc.shard < 0 {
		return true
	}
	sh := s.shards[loc.shard]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.eng == nil {
		return false
	}
	return sh.eng.IsDeleted(loc.local)
}

// Scan visits every live object in global-ID order. Unlike the
// single engine's Scan it skips deleted rows (per-shard object files
// cannot be addressed globally, so rows are read through Get); an
// unavailable shard fails the scan.
func (s *ShardedEngine) Scan(fn func(spatialkeyword.Object) error) error {
	n := s.NumObjects()
	for gid := 0; gid < n; gid++ {
		obj, err := s.Get(uint64(gid))
		if err != nil {
			if errors.Is(err, spatialkeyword.ErrDeleted) || errors.Is(err, spatialkeyword.ErrUnknownID) {
				continue
			}
			return err
		}
		if err := fn(obj); err != nil {
			return err
		}
	}
	return nil
}

// Corpus exports the engine-wide corpus statistics (see corpusStats):
// document count and frequencies include deleted documents, matching
// single-engine idf semantics.
func (s *ShardedEngine) Corpus() spatialkeyword.CorpusStats {
	return s.corpusStats()
}

// MeterIO snapshots every shard's disk counters; the returned function
// reports the random and sequential block accesses performed since the
// snapshot, summed across shards. Concurrent queries share the
// counters, so per-query attribution is exact only when the engine
// runs one query at a time.
func (s *ShardedEngine) MeterIO() func() (random, sequential uint64) {
	stop := s.MeterShardIO()
	return func() (uint64, uint64) {
		var total storage.Stats
		for _, st := range stop() {
			total = total.Add(st)
		}
		return total.Random(), total.Sequential()
	}
}
