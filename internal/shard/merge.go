package shard

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"
)

// The fan-out/merge machinery. Every shard streams results into one shared
// collector holding the global best k seen so far. The collector publishes
// the current k-th key through an atomic, so shards can test their next
// candidate's bound without taking the lock; a shard stops as soon as its
// best remaining candidate cannot beat the global k-th result.
//
// Correctness of the early stop: the threshold only tightens over time, so
// if a shard's remaining lower bound is strictly worse than the threshold
// at any moment, everything it still holds is strictly worse than the final
// k-th result and can contribute neither a result nor a tie. Candidates
// exactly at the threshold are still offered (the stop test is strict),
// which keeps the tie-handling deterministic: ties on the boundary key are
// broken by smallest object ID, independent of shard arrival order.

// item is one candidate in a collector: its ordering key (distance for
// distance-first and area queries, score for ranked queries), the global
// object ID used as the deterministic tie-break, and the caller's payload.
type item struct {
	key float64
	id  uint64
	val any
}

// collector is a bounded top-k merge buffer shared by all shards of one
// query. asc selects the direction: true keeps the k smallest keys
// (distances), false the k largest (scores). Ties on key prefer the
// smallest id in both directions.
type collector struct {
	k   int
	asc bool

	mu   sync.Mutex
	h    boundHeap // worst-kept-first heap, at most k items
	thr  atomic.Uint64
	full atomic.Bool
}

func newCollector(k int, asc bool) *collector {
	c := &collector{k: k, asc: asc}
	c.h.asc = asc
	if asc {
		c.thr.Store(math.Float64bits(math.Inf(1)))
	} else {
		c.thr.Store(math.Float64bits(math.Inf(-1)))
	}
	return c
}

// better reports whether a strictly beats b under the collector's order.
func (c *collector) better(a, b item) bool {
	if a.key != b.key {
		if c.asc {
			return a.key < b.key
		}
		return a.key > b.key
	}
	return a.id < b.id
}

// admissible reports whether a shard whose best remaining candidate has the
// given bound could still contribute a result or a boundary tie. Shards
// must stop pulling once this turns false — and it never turns true again,
// because the threshold only tightens.
func (c *collector) admissible(bound float64) bool {
	if !c.full.Load() {
		return true
	}
	thr := math.Float64frombits(c.thr.Load())
	if c.asc {
		return bound <= thr
	}
	return bound >= thr
}

// offer submits one candidate. It returns immediately when the candidate
// cannot enter the current top k.
func (c *collector) offer(key float64, id uint64, val any) {
	it := item{key: key, id: id, val: val}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.h.items) < c.k {
		heap.Push(&c.h, it)
		if len(c.h.items) == c.k {
			c.thr.Store(math.Float64bits(c.h.items[0].key))
			c.full.Store(true)
		}
		return
	}
	if !c.better(it, c.h.items[0]) {
		return
	}
	c.h.items[0] = it
	heap.Fix(&c.h, 0)
	c.thr.Store(math.Float64bits(c.h.items[0].key))
}

// results returns the collected top k, best first.
func (c *collector) results() []item {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]item, len(c.h.items))
	copy(out, c.h.items)
	// Selection sort is fine at k items; avoid mutating the heap.
	for i := range out {
		best := i
		for j := i + 1; j < len(out); j++ {
			if c.better(out[j], out[best]) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out
}

// boundHeap is a worst-first heap: the root is the weakest kept candidate,
// the one a better newcomer evicts. For asc (distances) that is the largest
// (key, id); for ranked scores the smallest key with the largest id.
type boundHeap struct {
	items []item
	asc   bool
}

func (h *boundHeap) Len() int { return len(h.items) }

func (h *boundHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.key != b.key {
		if h.asc {
			return a.key > b.key
		}
		return a.key < b.key
	}
	return a.id > b.id
}

func (h *boundHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *boundHeap) Push(x any) { h.items = append(h.items, x.(item)) }

func (h *boundHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}
