package shard

import (
	"sync"
	"testing"

	"spatialkeyword"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/obs"
)

// captureSink records every QueryMetrics delivered to it.
type captureSink struct {
	mu   sync.Mutex
	recs []obs.QueryMetrics
}

func (c *captureSink) RecordQuery(m obs.QueryMetrics) {
	c.mu.Lock()
	c.recs = append(c.recs, m)
	c.mu.Unlock()
}

func (c *captureSink) byShard() (perShard []obs.QueryMetrics, agg []obs.QueryMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.recs {
		if m.Shard >= 0 {
			perShard = append(perShard, m)
		} else {
			agg = append(agg, m)
		}
	}
	return perShard, agg
}

// TestMetricsSink checks that one fanned-out query delivers one record per
// shard plus one aggregate record whose counters are the per-shard sums.
func TestMetricsSink(t *testing.T) {
	rows, stats, bounds := loadDataset(t, dataset.Restaurants(0.001))
	const shards = 4
	eng, err := New(spatialkeyword.Config{}, Options{Shards: shards, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	fill(t, eng, rows)

	sink := &captureSink{}
	eng.SetMetricsSink(sink)

	kw := stats.WordsByFreq()[:1]
	res, qs, err := eng.TopKWithStats(5, rows[0].Point, kw...)
	if err != nil {
		t.Fatal(err)
	}

	perShard, agg := sink.byShard()
	if len(perShard) != shards {
		t.Fatalf("per-shard records = %d, want %d", len(perShard), shards)
	}
	if len(agg) != 1 {
		t.Fatalf("aggregate records = %d, want 1", len(agg))
	}
	seen := map[int]bool{}
	var nodes int
	var random uint64
	for _, m := range perShard {
		if m.Op != "topk" {
			t.Fatalf("per-shard op = %q", m.Op)
		}
		if seen[m.Shard] {
			t.Fatalf("duplicate record for shard %d", m.Shard)
		}
		seen[m.Shard] = true
		nodes += m.NodesExpanded
		random += m.RandomBlocks
	}
	a := agg[0]
	if a.Op != "topk" || a.K != 5 || a.Keywords != len(kw) || a.Results != len(res) {
		t.Fatalf("aggregate record = %+v", a)
	}
	if a.NodesExpanded != nodes || a.NodesExpanded != qs.NodesLoaded {
		t.Fatalf("aggregate nodes %d, per-shard sum %d, stats %d",
			a.NodesExpanded, nodes, qs.NodesLoaded)
	}
	if a.RandomBlocks != random || a.RandomBlocks != qs.BlocksRandom {
		t.Fatalf("aggregate random blocks %d, per-shard sum %d, stats %d",
			a.RandomBlocks, random, qs.BlocksRandom)
	}
	if a.Latency <= 0 {
		t.Fatal("aggregate latency not set")
	}

	// Ranked and area queries follow the same per-shard + aggregate shape.
	sink.mu.Lock()
	sink.recs = nil
	sink.mu.Unlock()
	if _, err := eng.TopKRanked(3, rows[0].Point, kw...); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TopKArea(3, rows[0].Point, rows[0].Point, kw...); err != nil {
		t.Fatal(err)
	}
	perShard, agg = sink.byShard()
	if len(perShard) != 2*shards || len(agg) != 2 {
		t.Fatalf("ranked+area records = %d per-shard, %d aggregate; want %d and 2",
			len(perShard), len(agg), 2*shards)
	}
	if agg[0].Op != "ranked" || agg[1].Op != "area" {
		t.Fatalf("aggregate ops = %q, %q", agg[0].Op, agg[1].Op)
	}
}
