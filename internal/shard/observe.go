package shard

import "spatialkeyword"

// SetMutationObserver installs fn to run after every successfully applied
// mutation on any shard, with IDs translated to the global space: the
// delivered event's ID (and Tag) is the global object ID, never a
// shard-local one. Like the single engine's observer it fires post-WAL
// and post-apply, on leader writes and on ApplyReplicatedBatch, so a
// follower observing its own sharded engine sees the leader's per-shard
// event streams. Cross-shard ordering is whatever the mutation
// interleaving was — the same guarantee replication gives.
//
// fn runs on the mutating goroutine while the shard's write lock is held;
// it must not block and must not call back into the engine. Install
// before serving traffic; passing nil removes the observer.
func (s *ShardedEngine) SetMutationObserver(fn func(spatialkeyword.MutationEvent)) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.eng == nil {
			sh.mu.Unlock()
			continue
		}
		if fn == nil {
			sh.eng.SetMutationObserver(nil)
			sh.mu.Unlock()
			continue
		}
		sh := sh
		sh.eng.SetMutationObserver(func(ev spatialkeyword.MutationEvent) {
			if ev.Delete {
				// The shard lock is held by the mutating path that fired
				// this, so reading the local→global map is safe. A local
				// ID beyond the map cannot come from an intact shard;
				// drop the event rather than fabricate a global ID.
				if ev.ID >= uint64(len(sh.globals)) {
					return
				}
				ev.ID = sh.globals[ev.ID]
				ev.Tag = ev.ID
				fn(ev)
				return
			}
			// Adds carry the reserved global ID as the record tag on
			// every path: Add (WAL and not), replay, and replication.
			ev.ID = ev.Tag
			fn(ev)
		})
		sh.mu.Unlock()
	}
}
