package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"spatialkeyword/internal/geo"
)

// Partitioner assigns objects to shards by location. Implementations must
// be deterministic (the same point always maps to the same shard, across
// process restarts) and safe for concurrent use.
type Partitioner interface {
	// Locate returns the shard index of a point, in [0, Shards()).
	Locate(p geo.Point) int
	// Overlapping returns the shards whose region could contain a point
	// inside the rectangle, in ascending order. A partitioner with no
	// spatial structure (hash) returns every shard.
	Overlapping(r geo.Rect) []int
	// Shards returns the number of shards.
	Shards() int
}

// GridPartitioner partitions space with a uniform grid over the dataset
// MBR: the bounds are cut into gx×gy cells (along the first two axes) and
// cell (cx, cy) maps to shard (cy·gx+cx) mod n. Points outside the bounds
// clamp to the nearest edge cell, so each edge cell's region conceptually
// extends to infinity — Overlapping accounts for that by clamping the query
// rectangle the same way. Range queries that touch few cells fan out to few
// shards; the grid is the right default when the data's extent is known.
type GridPartitioner struct {
	bounds geo.Rect
	n      int
	gx, gy int
}

// NewGridPartitioner builds a grid of n shards over the given bounds (the
// dataset MBR, or any box enclosing the hot region — outliers clamp to edge
// cells). The grid is as square as n allows: gx = ⌈√n⌉ columns, gy = ⌈n/gx⌉
// rows. One-dimensional bounds get a 1×n strip.
func NewGridPartitioner(n int, bounds geo.Rect) (*GridPartitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: grid partitioner needs n >= 1, got %d", n)
	}
	if bounds.Dim() == 0 {
		return nil, fmt.Errorf("shard: grid partitioner needs non-empty bounds")
	}
	for i := range bounds.Lo {
		if bounds.Lo[i] > bounds.Hi[i] {
			return nil, fmt.Errorf("shard: inverted bounds on axis %d", i)
		}
	}
	gx := int(math.Ceil(math.Sqrt(float64(n))))
	gy := (n + gx - 1) / gx
	if bounds.Dim() == 1 {
		gx, gy = n, 1
	}
	return &GridPartitioner{bounds: bounds, n: n, gx: gx, gy: gy}, nil
}

// Shards implements Partitioner.
func (g *GridPartitioner) Shards() int { return g.n }

// Bounds returns the grid's bounding box.
func (g *GridPartitioner) Bounds() geo.Rect { return g.bounds }

// cell returns the clamped cell coordinate of value v along one axis.
func gridCell(v, lo, hi float64, cells int) int {
	if cells <= 1 || hi <= lo {
		return 0
	}
	c := int(math.Floor((v - lo) / (hi - lo) * float64(cells)))
	if c < 0 {
		c = 0
	}
	if c >= cells {
		c = cells - 1
	}
	return c
}

// Locate implements Partitioner.
func (g *GridPartitioner) Locate(p geo.Point) int {
	cx := gridCell(p[0], g.bounds.Lo[0], g.bounds.Hi[0], g.gx)
	cy := 0
	if g.gy > 1 && p.Dim() > 1 {
		cy = gridCell(p[1], g.bounds.Lo[1], g.bounds.Hi[1], g.gy)
	}
	return (cy*g.gx + cx) % g.n
}

// Overlapping implements Partitioner: the shards owning any cell the
// rectangle's clamped image touches. Clamping is monotone per axis, so a
// point inside r always clamps into a cell inside r's clamped cell range.
func (g *GridPartitioner) Overlapping(r geo.Rect) []int {
	cx0 := gridCell(r.Lo[0], g.bounds.Lo[0], g.bounds.Hi[0], g.gx)
	cx1 := gridCell(r.Hi[0], g.bounds.Lo[0], g.bounds.Hi[0], g.gx)
	cy0, cy1 := 0, 0
	if g.gy > 1 && r.Dim() > 1 {
		cy0 = gridCell(r.Lo[1], g.bounds.Lo[1], g.bounds.Hi[1], g.gy)
		cy1 = gridCell(r.Hi[1], g.bounds.Lo[1], g.bounds.Hi[1], g.gy)
	}
	seen := make([]bool, g.n)
	var out []int
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			sh := (cy*g.gx + cx) % g.n
			if !seen[sh] {
				seen[sh] = true
			}
		}
	}
	for sh, ok := range seen {
		if ok {
			out = append(out, sh)
		}
	}
	return out
}

// HashPartitioner spreads points across shards by hashing their
// coordinates (FNV-1a over the IEEE-754 bits). It needs no knowledge of
// the data's extent — the fallback for unbounded or unknown distributions —
// at the price that every range query fans out to every shard.
type HashPartitioner struct {
	n int
}

// NewHashPartitioner builds a hash partitioner over n shards.
func NewHashPartitioner(n int) (*HashPartitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: hash partitioner needs n >= 1, got %d", n)
	}
	return &HashPartitioner{n: n}, nil
}

// Shards implements Partitioner.
func (h *HashPartitioner) Shards() int { return h.n }

// Locate implements Partitioner.
func (h *HashPartitioner) Locate(p geo.Point) int {
	f := fnv.New64a()
	var buf [8]byte
	for _, v := range p {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		f.Write(buf[:]) //nolint:errcheck // hash.Hash never errors
	}
	return int(f.Sum64() % uint64(h.n))
}

// Overlapping implements Partitioner: every shard.
func (h *HashPartitioner) Overlapping(geo.Rect) []int {
	out := make([]int, h.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// partitionerState is the JSON form a partitioner takes in the sharded
// manifest, so a durable sharded engine reopens with identical routing.
type partitionerState struct {
	Kind   string    `json:"kind"` // "grid" or "hash"
	Shards int       `json:"shards"`
	Lo     []float64 `json:"lo,omitempty"`
	Hi     []float64 `json:"hi,omitempty"`
}

// marshalPartitioner captures a partitioner's state for the manifest.
func marshalPartitioner(p Partitioner) (partitionerState, error) {
	switch t := p.(type) {
	case *GridPartitioner:
		return partitionerState{Kind: "grid", Shards: t.n, Lo: t.bounds.Lo, Hi: t.bounds.Hi}, nil
	case *HashPartitioner:
		return partitionerState{Kind: "hash", Shards: t.n}, nil
	default:
		return partitionerState{}, fmt.Errorf("shard: partitioner %T is not persistable", p)
	}
}

// unmarshalPartitioner restores a partitioner from its manifest state.
func unmarshalPartitioner(st partitionerState) (Partitioner, error) {
	switch st.Kind {
	case "grid":
		return NewGridPartitioner(st.Shards, geo.Rect{Lo: st.Lo, Hi: st.Hi})
	case "hash":
		return NewHashPartitioner(st.Shards)
	default:
		return nil, fmt.Errorf("shard: unknown partitioner kind %q", st.Kind)
	}
}
