package shard

import (
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
)

func TestGridPartitionerLocateRange(t *testing.T) {
	bounds := geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(100, 100))
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		g, err := NewGridPartitioner(n, bounds)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		counts := make([]int, n)
		for i := 0; i < 2000; i++ {
			p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
			sh := g.Locate(p)
			if sh < 0 || sh >= n {
				t.Fatalf("n=%d: Locate = %d", n, sh)
			}
			counts[sh]++
		}
		if n > 1 {
			for sh, c := range counts {
				if c == 0 {
					t.Errorf("n=%d: shard %d received no uniform points", n, sh)
				}
			}
		}
	}
}

func TestGridPartitionerClampsOutliers(t *testing.T) {
	g, err := NewGridPartitioner(4, geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(10, 10)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geo.Point{
		geo.NewPoint(-50, 5), geo.NewPoint(1e9, 1e9), geo.NewPoint(5, -3), geo.NewPoint(11, 12),
	} {
		if sh := g.Locate(p); sh < 0 || sh >= 4 {
			t.Errorf("Locate(%v) = %d", p, sh)
		}
	}
}

// A point inside a rectangle must always land in a shard the rectangle
// overlaps — including outliers beyond the grid bounds, whose cells extend
// to infinity.
func TestGridOverlappingCoversLocate(t *testing.T) {
	bounds := geo.NewRect(geo.NewPoint(-20, -20), geo.NewPoint(20, 20))
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 5, 9} {
		g, err := NewGridPartitioner(n, bounds)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 500; trial++ {
			// Rectangles and points over a wider range than the bounds.
			x0, y0 := rng.Float64()*120-60, rng.Float64()*120-60
			w, h := rng.Float64()*40, rng.Float64()*40
			r := geo.NewRect(geo.NewPoint(x0, y0), geo.NewPoint(x0+w, y0+h))
			p := geo.NewPoint(x0+rng.Float64()*w, y0+rng.Float64()*h)
			want := g.Locate(p)
			found := false
			for _, sh := range g.Overlapping(r) {
				if sh == want {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("n=%d: point %v in rect %v locates to shard %d, Overlapping = %v",
					n, p, r, want, g.Overlapping(r))
			}
		}
	}
}

func TestGridOverlappingIsSelective(t *testing.T) {
	g, err := NewGridPartitioner(16, geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(100, 100)))
	if err != nil {
		t.Fatal(err)
	}
	// A rectangle inside one cell should touch far fewer than all shards.
	got := g.Overlapping(geo.NewRect(geo.NewPoint(1, 1), geo.NewPoint(2, 2)))
	if len(got) != 1 {
		t.Errorf("tiny rect overlaps %v, want one shard", got)
	}
	all := g.Overlapping(geo.NewRect(geo.NewPoint(-10, -10), geo.NewPoint(110, 110)))
	if len(all) != 16 {
		t.Errorf("covering rect overlaps %d shards, want 16", len(all))
	}
}

func TestHashPartitioner(t *testing.T) {
	h, err := NewHashPartitioner(5)
	if err != nil {
		t.Fatal(err)
	}
	p := geo.NewPoint(3.25, -7.5)
	if h.Locate(p) != h.Locate(geo.NewPoint(3.25, -7.5)) {
		t.Error("hash not deterministic")
	}
	if got := h.Locate(p); got < 0 || got >= 5 {
		t.Errorf("Locate = %d", got)
	}
	if got := h.Overlapping(geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(1, 1))); len(got) != 5 {
		t.Errorf("hash Overlapping = %v, want all 5", got)
	}
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[h.Locate(geo.NewPoint(rng.Float64(), rng.Float64()))]++
	}
	for sh, c := range counts {
		if c < 500 {
			t.Errorf("hash shard %d got %d of 5000 points — badly skewed", sh, c)
		}
	}
}

func TestPartitionerStateRoundtrip(t *testing.T) {
	g, _ := NewGridPartitioner(6, geo.NewRect(geo.NewPoint(-5, 0), geo.NewPoint(5, 10)))
	st, err := marshalPartitioner(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := unmarshalPartitioner(st)
	if err != nil {
		t.Fatal(err)
	}
	g2 := back.(*GridPartitioner)
	if g2.n != g.n || g2.gx != g.gx || g2.gy != g.gy || !g2.bounds.Equal(g.bounds) {
		t.Errorf("grid roundtrip: %+v vs %+v", g2, g)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := geo.NewPoint(rng.Float64()*30-15, rng.Float64()*30-15)
		if g.Locate(p) != g2.Locate(p) {
			t.Fatalf("roundtripped grid disagrees at %v", p)
		}
	}

	h, _ := NewHashPartitioner(3)
	st, err = marshalPartitioner(h)
	if err != nil {
		t.Fatal(err)
	}
	back, err = unmarshalPartitioner(st)
	if err != nil {
		t.Fatal(err)
	}
	if back.(*HashPartitioner).n != 3 {
		t.Errorf("hash roundtrip lost shard count")
	}
	if _, err := unmarshalPartitioner(partitionerState{Kind: "nope"}); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestPartitionerValidation(t *testing.T) {
	if _, err := NewGridPartitioner(0, geo.NewRect(geo.NewPoint(0), geo.NewPoint(1))); err == nil {
		t.Error("n=0 grid should fail")
	}
	if _, err := NewGridPartitioner(2, geo.Rect{}); err == nil {
		t.Error("empty bounds should fail")
	}
	if _, err := NewHashPartitioner(0); err == nil {
		t.Error("n=0 hash should fail")
	}
}
