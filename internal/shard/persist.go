package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"spatialkeyword"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// Durability. A durable sharded engine lives in a directory holding one
// subdirectory per shard — each a complete durable engine under the
// existing manifest scheme — plus a top-level sharded manifest recording
// the partitioner and the global→shard ID assignment:
//
//	dir/
//	  shards.json      partitioner state + assignment (written by Save)
//	  shard-0000/      manifest.json, objects.db, index.db
//	  shard-0001/
//	  ...
//
// Per-shard local IDs are insertion-ordered, so the assignment array (the
// shard index of every global ID, in global order) reconstructs both
// directions of the ID translation on reopen.

const shardManifestName = "shards.json"

// shardManifest is the sharded engine's durable root.
type shardManifest struct {
	Config      spatialkeyword.Config `json:"config"`
	Partitioner partitionerState      `json:"partitioner"`
	// Assign holds the shard index of each global object ID.
	Assign []int `json:"assign"`
	// Gens pins each shard to the snapshot generation it had when this
	// manifest was written. A crash after some shards saved a newer
	// generation but before the manifest commit reopens every shard at
	// these older — mutually consistent — generations instead of mixing
	// old and new shards.
	Gens []uint64 `json:"gens,omitempty"`
}

// Crash-consistency test hooks: the save protocol reaches the filesystem
// only through these vars, and saveStepHook (when non-nil) runs before each
// shard's save (step = shard index) and before the manifest write (step =
// shard count), so tests can kill the save at any point.
var (
	fsWriteFile  = os.WriteFile
	fsRename     = os.Rename
	saveStepHook func(step int) error
)

// shardDir names the i-th shard's subdirectory.
func shardDir(dir string, i int) string {
	return filepath.Join(dir, DirName(i))
}

// IsShardedDir reports whether dir holds a durable sharded engine.
func IsShardedDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, shardManifestName))
	return err == nil
}

// NewDurable creates an empty sharded engine whose shards live in
// subdirectories of dir (created if needed). Call Save to persist state and
// Close to release the files.
func NewDurable(cfg spatialkeyword.Config, dir string, opts Options) (*ShardedEngine, error) {
	part, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: create engine dir: %w", err)
	}
	s := &ShardedEngine{cfg: cfg, part: part, vocab: textutil.NewVocabulary(), dir: dir}
	for i := 0; i < part.Shards(); i++ {
		eng, err := spatialkeyword.NewDurableEngine(cfg, shardDir(dir, i))
		if err != nil {
			s.Close() //nolint:errcheck // already failing
			return nil, err
		}
		s.shards = append(s.shards, &shardHandle{idx: i, eng: eng})
	}
	if cfg.WAL {
		// A log is only replayable from a committed baseline: commit the
		// empty engine now (mirroring NewDurableEngine's initial
		// checkpoint) so mutations acknowledged before the first explicit
		// Save survive an unclean shutdown.
		if err := s.Save(); err != nil {
			s.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("shard: initial wal checkpoint: %w", err)
		}
	}
	return s, nil
}

// ErrUnhealthyShard is wrapped by Save when a shard marked unhealthy would
// be snapshotted: its working files are suspect (the fault that degraded it
// may have corrupted them), and committing them as a new generation would
// poison the last good snapshot. Repair the device and call ResetHealth to
// re-enable saves; until then the previously committed manifest keeps every
// shard pinned at a mutually consistent generation.
var ErrUnhealthyShard = errors.New("shard: unhealthy shard")

// Save checkpoints every shard and then the sharded manifest. Only durable
// engines can Save. Save refuses (with ErrUnhealthyShard) while any shard is
// degraded, before touching the disk, so reopening recovers the last
// consistent generation instead of a snapshot of faulted state.
func (s *ShardedEngine) Save() error {
	if s.dir == "" {
		return spatialkeyword.ErrNotDurable
	}
	for _, sh := range s.shards {
		if sh.unhealthy.Load() {
			err := fmt.Errorf("shard %d: %w, refusing to snapshot", sh.idx, ErrUnhealthyShard)
			if last, ok := sh.lastErr.Load().(error); ok && last != nil {
				err = fmt.Errorf("%w: %v", err, last)
			}
			return err
		}
	}
	gens := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		if saveStepHook != nil {
			if err := saveStepHook(i); err != nil {
				return err
			}
		}
		sh.mu.Lock()
		err := sh.eng.Save()
		gens[i] = sh.eng.Generation()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh.idx, err)
		}
	}
	if saveStepHook != nil {
		if err := saveStepHook(len(s.shards)); err != nil {
			return err
		}
	}
	return s.writeShardManifest(gens)
}

// writeShardManifest atomically commits the sharded manifest — the current
// assignment pinned to the given per-shard generation vector. Save and
// RotateShard share it.
func (s *ShardedEngine) writeShardManifest(gens []uint64) error {
	ps, err := marshalPartitioner(s.part)
	if err != nil {
		return err
	}
	m := shardManifest{Config: s.cfg, Partitioner: ps, Gens: gens}
	s.mu.RLock()
	m.Assign = make([]int, len(s.assign))
	for gid, loc := range s.assign {
		m.Assign[gid] = loc.shard
	}
	s.mu.RUnlock()
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, shardManifestName+".tmp")
	if err := fsWriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return fsRename(tmp, filepath.Join(s.dir, shardManifestName))
}

// Close releases every shard's files. Memory-only engines have nothing to
// close.
func (s *ShardedEngine) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		sh.mu.Lock()
		err := sh.eng.Close()
		sh.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Open restores a durable sharded engine saved in dir.
func Open(dir string) (*ShardedEngine, error) {
	data, err := os.ReadFile(filepath.Join(dir, shardManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: read manifest: %w", err)
	}
	var m shardManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parse manifest: %w", err)
	}
	part, err := unmarshalPartitioner(m.Partitioner)
	if err != nil {
		return nil, err
	}
	if m.Gens != nil && len(m.Gens) != part.Shards() {
		return nil, fmt.Errorf("shard: manifest pins %d generations for %d shards", len(m.Gens), part.Shards())
	}
	s := &ShardedEngine{cfg: m.Config, part: part, vocab: textutil.NewVocabulary(), dir: dir}
	for i := 0; i < part.Shards(); i++ {
		var eng *spatialkeyword.Engine
		var err error
		if m.Gens != nil {
			// Open at the pinned generation, not whatever the shard's own
			// manifest points at: a crash between per-shard saves may have
			// advanced some shards past this manifest.
			eng, err = spatialkeyword.OpenEngineAt(shardDir(dir, i), m.Gens[i])
		} else {
			eng, err = spatialkeyword.OpenEngine(shardDir(dir, i))
		}
		if err != nil {
			if m.Config.WAL && storage.IsIOFault(err) {
				// Degraded open: one shard's storage is faulting, but with a
				// WAL the rest of the engine is still exactly recoverable.
				// Serve the healthy shards; this one stays out of rotation
				// (sticky, like a mid-query fault) until repaired and
				// reopened.
				sh := &shardHandle{idx: i}
				sh.lastErr.Store(err)
				sh.unhealthy.Store(true)
				s.shards = append(s.shards, sh)
				continue
			}
			s.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards = append(s.shards, &shardHandle{idx: i, eng: eng})
	}
	// Rebuild the ID translation from the assignment: local IDs are
	// insertion-ordered within each shard, in global order.
	s.assign = make([]shardLoc, len(m.Assign))
	for gid, shardIdx := range m.Assign {
		if shardIdx == -1 {
			s.assign[gid] = tombstone
			continue
		}
		if shardIdx < 0 || shardIdx >= len(s.shards) {
			s.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("shard: manifest assigns object %d to shard %d of %d", gid, shardIdx, len(s.shards))
		}
		sh := s.shards[shardIdx]
		s.assign[gid] = shardLoc{shard: shardIdx, local: uint64(len(sh.globals))}
		sh.globals = append(sh.globals, uint64(gid))
	}
	if m.Config.WAL {
		if err := s.reconcileWAL(len(m.Assign)); err != nil {
			s.Close() //nolint:errcheck // already failing
			return nil, err
		}
	}
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		if got := sh.eng.NumObjects(); got != len(sh.globals) {
			s.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("shard %d: manifest assigns %d objects, engine holds %d", sh.idx, len(sh.globals), got)
		}
	}
	// Rebuild corpus statistics from every shard's object file (deleted
	// rows included, matching single-engine reopen semantics).
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		err := sh.eng.Scan(func(o spatialkeyword.Object) error {
			s.vocab.AddDocWith(s.analyzer(), o.Text)
			return nil
		})
		if err != nil {
			s.Close() //nolint:errcheck // already failing
			return nil, err
		}
	}
	return s, nil
}

// reconcileWAL extends the manifest's global assignment with the mutations
// the shards replayed from their write-ahead logs, reconstructing the
// crash-lost portion of the global→shard map from the logs alone.
func (s *ShardedEngine) reconcileWAL(manifestLen int) error {
	// Reservations the manifest recorded but whose log record never became
	// durable: the shard holds fewer objects than the manifest assigns it.
	// A failed append breaks that shard's WAL (sticky), so the missing
	// objects are always the tail of its assignment; tombstone them.
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		if n := sh.eng.NumObjects(); n < len(sh.globals) {
			for _, gid := range sh.globals[n:] {
				s.assign[gid] = tombstone
			}
			sh.globals = sh.globals[:n]
		}
	}
	// Acknowledged adds beyond the manifest: each shard's replayed add
	// records carry the reserved global ID as their tag. Merge them in tag
	// order; per shard, tag order equals replay (local insertion) order, so
	// the rebuilt locals line up with the engines' object files. Gaps are
	// reservations that died with the crash — or live in a shard that
	// failed to open — and become tombstones.
	type newAdd struct {
		gid   uint64
		shard *shardHandle
	}
	var adds []newAdd
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		for _, op := range sh.eng.WALReplay() {
			if op.Delete || op.Tag < uint64(manifestLen) {
				continue // deletes and manifest-covered adds change no assignment
			}
			adds = append(adds, newAdd{gid: op.Tag, shard: sh})
		}
	}
	sort.Slice(adds, func(i, j int) bool { return adds[i].gid < adds[j].gid })
	for _, a := range adds {
		for uint64(len(s.assign)) < a.gid {
			s.assign = append(s.assign, tombstone)
		}
		if uint64(len(s.assign)) != a.gid {
			return fmt.Errorf("shard %d: wal replay assigns global id %d twice", a.shard.idx, a.gid)
		}
		s.assign = append(s.assign, shardLoc{shard: a.shard.idx, local: uint64(len(a.shard.globals))})
		a.shard.globals = append(a.shard.globals, a.gid)
	}
	return nil
}
