package shard

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"spatialkeyword"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/geo"
)

func TestIsShardedDir(t *testing.T) {
	dir := t.TempDir()
	if IsShardedDir(dir) {
		t.Error("empty dir reported as sharded")
	}
	if err := os.WriteFile(filepath.Join(dir, shardManifestName), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !IsShardedDir(dir) {
		t.Error("dir with shards.json not reported as sharded")
	}
}

func TestDurableRoundtrip(t *testing.T) {
	rows, stats, bounds := loadDataset(t, dataset.Restaurants(0.0005))
	dir := t.TempDir()
	cfg := spatialkeyword.Config{SignatureBytes: 16}

	s, err := NewDurable(cfg, dir, Options{Shards: 3, Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, rows)
	for id := uint64(0); id < uint64(len(rows)); id += 5 {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	kws := keywordSets(stats, 1, 2, 7)[0]
	p := queryPoints(rows, 1, 3)[0]
	wantTopK, err := s.TopK(8, p, kws...)
	if err != nil {
		t.Fatal(err)
	}
	wantRanked, err := s.TopKRanked(8, p, kws...)
	if err != nil {
		t.Fatal(err)
	}
	wantStats := s.Stats()
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !IsShardedDir(dir) {
		t.Fatal("saved dir not recognized as sharded")
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumShards() != 3 {
		t.Fatalf("reopened NumShards = %d", r.NumShards())
	}
	if _, ok := r.Partitioner().(*GridPartitioner); !ok {
		t.Fatalf("reopened partitioner = %T", r.Partitioner())
	}
	gotStats := r.Stats()
	if gotStats.Objects != wantStats.Objects || gotStats.Vocabulary != wantStats.Vocabulary {
		t.Errorf("reopened stats %+v, want %+v", gotStats, wantStats)
	}

	gotTopK, err := r.TopK(8, p, kws...)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "reopened TopK", wantTopK, gotTopK)
	gotRanked, err := r.TopKRanked(8, p, kws...)
	if err != nil {
		t.Fatal(err)
	}
	sameRanked(t, "reopened TopKRanked", wantRanked, gotRanked)

	// Deletions survived, and new writes after reopen keep global IDs going.
	if _, err := r.Get(0); !errors.Is(err, spatialkeyword.ErrDeleted) {
		t.Errorf("Get(0) after reopen = %v, want deleted", err)
	}
	id, err := r.Add([]float64{rows[0].Point[0], rows[0].Point[1]}, "fresh reopened row")
	if err != nil {
		t.Fatal(err)
	}
	if id != uint64(len(rows)) {
		t.Errorf("post-reopen Add id = %d, want %d", id, len(rows))
	}
	obj, err := r.Get(id)
	if err != nil || obj.Text != "fresh reopened row" {
		t.Errorf("Get(new) = %+v, %v", obj, err)
	}
	if err := r.Save(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err == nil {
		t.Error("Open on empty dir should fail")
	}
	if err := os.WriteFile(filepath.Join(dir, shardManifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open on corrupt manifest should fail")
	}
}

func TestOpenRejectsInconsistentAssignment(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurable(spatialkeyword.Config{SignatureBytes: 8}, dir, Options{
		Shards: 2,
		Bounds: geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(10, 10)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add([]float64{1, 1}, "alpha beta"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rewrite := func(assign []int) {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, shardManifestName))
		if err != nil {
			t.Fatal(err)
		}
		var m shardManifest
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		m.Assign = assign
		data, err = json.Marshal(&m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, shardManifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An extra object claimed on an out-of-range shard.
	rewrite([]int{0, 9})
	if _, err := Open(dir); err == nil {
		t.Error("Open should reject out-of-range shard assignment")
	}
	// Count mismatch: the object claimed on a shard that holds none.
	rewrite([]int{1})
	if _, err := Open(dir); err == nil {
		t.Error("Open should reject assignment disagreeing with shard contents")
	}
}
