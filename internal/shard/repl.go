package shard

import (
	"fmt"

	"spatialkeyword"
	"spatialkeyword/internal/wal"
)

// Replication. A sharded engine replicates as N independent record streams,
// one per shard, each an ordinary engine WAL stream (see the root package's
// replication surface). Cross-shard ordering is not preserved — and does not
// need to be: add records carry the reserved global ID as their tag, so the
// follower rebuilds the global→shard assignment from the per-shard streams
// exactly the way crash recovery rebuilds it from the per-shard logs.

// ManifestFileName is the sharded manifest's name within the engine
// directory; replication serves and stages it by this name.
const ManifestFileName = shardManifestName

// DirName names shard i's subdirectory within a sharded engine directory.
func DirName(i int) string { return fmt.Sprintf("shard-%04d", i) }

// SetReplicationHooks installs the leader-side tail hooks on every shard's
// engine: onAppend fires after shard i durably logs a record, onRotate when
// shard i commits a new snapshot generation. Either may be nil. Hooks run on
// the mutating goroutine under the shard's write lock — stage, don't block.
// Install before serving traffic.
func (s *ShardedEngine) SetReplicationHooks(onAppend func(shard int, gen uint64, rec wal.Record), onRotate func(shard int, newGen uint64)) {
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		idx := sh.idx
		var appendHook func(uint64, wal.Record)
		var rotateHook func(uint64)
		if onAppend != nil {
			appendHook = func(gen uint64, rec wal.Record) { onAppend(idx, gen, rec) }
		}
		if onRotate != nil {
			rotateHook = func(newGen uint64) { onRotate(idx, newGen) }
		}
		sh.eng.SetReplicationHooks(appendHook, rotateHook)
	}
}

// ShardDurability returns every shard's WAL generation/sequence watermark,
// in shard order. An unavailable shard reports the zero value.
func (s *ShardedEngine) ShardDurability() []spatialkeyword.DurabilityStats {
	out := make([]spatialkeyword.DurabilityStats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		if sh.eng != nil {
			out[i] = sh.eng.DurabilityStats()
		}
		sh.mu.RUnlock()
	}
	return out
}

// ShardReplayRecords returns the full records shard i's open replayed from
// its write-ahead log, in log order (see Engine.WALReplayRecords).
func (s *ShardedEngine) ShardReplayRecords(i int) []wal.Record {
	sh := s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.eng == nil {
		return nil
	}
	return sh.eng.WALReplayRecords()
}

// ApplyReplicatedBatch applies one batch of records shipped from the
// leader's shard-i stream, in order, then flushes and group-commits. The
// shard's write lock is held across the whole batch so concurrent queries
// never observe a half-applied batch (or race the flush).
//
// Global-assignment bookkeeping mirrors crash recovery: an add's tag is the
// leader's reserved global ID. A gid beyond the current assignment extends
// it (gap-filling with tombstones — the gap belongs to other shards' still
// undelivered streams); a gid already assigned must be a tombstone, which
// the record resurrects. A live duplicate means the streams and the local
// state disagree — corruption, never silently absorbed.
func (s *ShardedEngine) ApplyReplicatedBatch(shard int, recs []wal.Record) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	sh := s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.eng == nil {
		return fmt.Errorf("shard %d: %w", shard, errShardDown)
	}
	for _, rec := range recs {
		if rec.Op == wal.OpAdd {
			gid := rec.Tag
			// Lock order matches Add: sh.mu (held) then s.mu.
			s.mu.Lock()
			for uint64(len(s.assign)) < gid {
				s.assign = append(s.assign, tombstone)
			}
			if uint64(len(s.assign)) == gid {
				s.assign = append(s.assign, shardLoc{shard: shard, local: rec.ID})
			} else if s.assign[gid].shard < 0 {
				s.assign[gid] = shardLoc{shard: shard, local: rec.ID}
			} else {
				s.mu.Unlock()
				return fmt.Errorf("%w: replicated record %d reassigns live global id %d", errCorruptShard, rec.Seq, gid)
			}
			s.vocab.AddDocWith(s.analyzer(), rec.Text)
			s.mu.Unlock()
			if err := sh.eng.ApplyReplicated(rec); err != nil {
				// Reserved but never applied — same rule as a failed Add: the
				// gid must never resolve.
				s.mu.Lock()
				s.assign[gid] = tombstone
				s.mu.Unlock()
				return fmt.Errorf("shard %d: %w", shard, err)
			}
			sh.globals = append(sh.globals, gid)
			continue
		}
		if err := sh.eng.ApplyReplicated(rec); err != nil {
			return fmt.Errorf("shard %d: %w", shard, err)
		}
	}
	if err := sh.eng.Flush(); err != nil {
		return fmt.Errorf("shard %d: %w", shard, err)
	}
	if err := sh.eng.SyncWAL(); err != nil {
		return fmt.Errorf("shard %d: %w", shard, err)
	}
	return nil
}

// RotateShard checkpoints shard i into a new snapshot generation and
// rewrites the sharded manifest to pin it — the follower's reaction to a
// leader-side rotation of that shard's stream. Unlike Save it touches only
// the one shard, so the other shards' streams keep draining undisturbed;
// the manifest's mixed generation vector is exactly what a crash between
// per-shard saves would leave, which Open already reopens consistently.
func (s *ShardedEngine) RotateShard(i int) error {
	if s.dir == "" {
		return spatialkeyword.ErrNotDurable
	}
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("shard: no shard %d", i)
	}
	sh := s.shards[i]
	sh.mu.Lock()
	if sh.eng == nil {
		sh.mu.Unlock()
		return fmt.Errorf("shard %d: %w", i, errShardDown)
	}
	err := sh.eng.Save()
	sh.mu.Unlock()
	if err != nil {
		return fmt.Errorf("shard %d: %w", i, err)
	}
	gens := make([]uint64, len(s.shards))
	for j, other := range s.shards {
		other.mu.RLock()
		if other.eng != nil {
			gens[j] = other.eng.Generation()
		}
		other.mu.RUnlock()
	}
	return s.writeShardManifest(gens)
}
