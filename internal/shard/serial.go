package shard

import (
	"spatialkeyword"
)

// Serial (coordinated) top-k merge.
//
// TopK and TopKRanked free-run one goroutine per shard: each shard drains
// its stream until the shared threshold proves it useless. That maximizes
// wall-clock overlap, but a shard scheduled ahead of the others can emit up
// to k speculative results before the threshold tightens — wasted I/O that
// a coordinated execution would not issue. TopKSerial and TopKRankedSerial
// are the coordinated counterparts: a sequential best-first k-way merge
// that pulls one result at a time from the shard whose next candidate has
// the best bound (smallest distance, or highest score). Per device, this is
// the minimum I/O any exact merge can do — a shard is only advanced while
// its bound could still beat the global k-th result — so the cost-model
// benchmark (internal/bench.ShardedDiskScaling) meters these to report what
// the sharded layout costs per device without the scheduler's speculation.
//
// Results are identical to TopK/TopKRanked: both feed the same collector,
// and the serial pull order is one of the interleavings the parallel drain
// admits (see merge.go — the collector's result set is
// interleaving-independent).

// TopKSerial returns exactly TopK's results via the coordinated best-first
// merge. All shards are read-locked for the duration of the merge.
func (s *ShardedEngine) TopKSerial(k int, point []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	if k <= 0 {
		return nil, nil
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
	}
	iters := make([]streamIter, len(s.shards))
	for i, sh := range s.shards {
		if sh.eng == nil {
			continue // unavailable shard: serial merges skip it (degraded)
		}
		it, err := sh.eng.Search(point, keywords...)
		if err != nil {
			return nil, err
		}
		iters[i] = it
	}
	col := newCollector(k, true)
	if err := s.serialMergeDistance(iters, col); err != nil {
		return nil, err
	}
	return distanceResults(col), nil
}

// serialMergeDistance pulls from the shard with the smallest bound until no
// shard's next candidate can beat the global k-th result.
func (s *ShardedEngine) serialMergeDistance(iters []streamIter, col *collector) error {
	for {
		best := -1
		var bestBound float64
		for i, it := range iters {
			if it == nil {
				continue
			}
			b, ok := it.PeekBound()
			if !ok {
				iters[i] = nil
				continue
			}
			if best < 0 || b < bestBound {
				best, bestBound = i, b
			}
		}
		if best < 0 || !col.admissible(bestBound) {
			return nil // every remaining bound is >= bestBound
		}
		r, ok, err := iters[best].Next()
		if err != nil {
			return err
		}
		if !ok {
			iters[best] = nil
			continue
		}
		col.offer(r.Dist, s.shards[best].globals[r.Object.ID], r)
	}
}

// TopKRankedSerial returns exactly TopKRanked's results via the coordinated
// best-first merge (highest score bound pulls first).
func (s *ShardedEngine) TopKRankedSerial(k int, point []float64, keywords ...string) ([]spatialkeyword.RankedResult, error) {
	if k <= 0 {
		return nil, nil
	}
	cs := s.corpusStats()
	for _, sh := range s.shards {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
	}
	iters := make([]*spatialkeyword.RankedSearchIter, len(s.shards))
	for i, sh := range s.shards {
		if sh.eng == nil {
			continue // unavailable shard: serial merges skip it (degraded)
		}
		it, err := sh.eng.SearchRankedWith(cs, point, keywords...)
		if err != nil {
			return nil, err
		}
		iters[i] = it
	}
	col := newCollector(k, false)
	for {
		best := -1
		var bestBound float64
		for i, it := range iters {
			if it == nil {
				continue
			}
			b, ok := it.PeekBound()
			if !ok {
				iters[i] = nil
				continue
			}
			if best < 0 || b > bestBound {
				best, bestBound = i, b
			}
		}
		if best < 0 || !col.admissible(bestBound) {
			break
		}
		r, ok, err := iters[best].Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			iters[best] = nil
			continue
		}
		col.offer(r.Score, s.shards[best].globals[r.Object.ID], r)
	}
	items := col.results()
	out := make([]spatialkeyword.RankedResult, 0, len(items))
	for _, it := range items {
		r := it.val.(spatialkeyword.RankedResult)
		r.Object.ID = it.id
		out = append(out, r)
	}
	return out, nil
}
