// Package shard scales the spatial keyword engine across CPU cores: a
// ShardedEngine partitions objects over N independent engines (each a full
// IR²-Tree over its own simulated disks) using a pluggable spatial
// partitioner, and answers queries by fanning out to the shards in parallel
// and merging their result streams.
//
// Writes touch exactly one shard, guarded by that shard's own RWMutex, so
// an insert no longer blocks searches on the rest of the data. Top-k
// queries (distance-first, area, and general ranked) run one goroutine per
// shard; each shard streams results into a bounded k-way merge that
// preserves exact top-k semantics — a shard stops early once its best
// remaining candidate cannot beat the current global k-th result, which the
// merge publishes through an atomic bound. Boolean range queries and the
// maintenance operations route only to the shards whose region intersects
// the target.
//
// Results are identical to a single engine over the same objects: the
// merge is exact (see the correctness note in merge.go), object IDs are
// global, and ranked queries score against engine-wide corpus statistics
// rather than per-shard vocabularies (shard-local idf would re-rank
// results). Distance ties are broken by smallest global ID, where a single
// engine breaks them by traversal order.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// Options configures a ShardedEngine.
type Options struct {
	// Shards is the number of shards. Zero means 1.
	Shards int
	// Partitioner routes points to shards. Nil picks a default: a grid
	// partitioner over Bounds when Bounds is set, else a hash partitioner
	// (the fallback for unbounded data). A non-nil Partitioner must agree
	// with Shards.
	Partitioner Partitioner
	// Bounds is the dataset MBR for the default grid partitioner.
	Bounds geo.Rect
}

// shardLoc addresses one object inside the sharded engine. A negative
// shard index is a tombstone: the global ID was reserved for a mutation
// that never became durable (a WAL append failed, or crash recovery found
// a gap in the logged IDs); the ID is never reused and never resolves.
type shardLoc struct {
	shard int
	local uint64
}

// tombstone marks a reserved-but-dead global ID.
var tombstone = shardLoc{shard: -1}

// shardHandle is one shard: an independent engine plus its own lock and the
// local→global ID translation. The lock follows the engine's contract —
// queries are concurrent, writes exclusive.
type shardHandle struct {
	idx     int
	mu      sync.RWMutex
	eng     *spatialkeyword.Engine
	globals []uint64 // local object ID → global object ID

	// unhealthy is set (sticky) when the shard's storage faults; fan-outs
	// then skip the shard and report degraded results instead of failing
	// the whole query. lastErr holds the fault that tripped it.
	unhealthy atomic.Bool
	lastErr   atomic.Value // error
}

// globalID translates a shard-local result ID, failing with a typed
// corruption error (instead of panicking) when a damaged shard hands back
// an ID it never assigned.
func (sh *shardHandle) globalID(local uint64) (uint64, error) {
	if local >= uint64(len(sh.globals)) {
		return 0, fmt.Errorf("%w: shard %d returned object %d of %d", errCorruptShard, sh.idx, local, len(sh.globals))
	}
	return sh.globals[local], nil
}

// errCorruptShard marks results that cannot have come from an intact shard.
var errCorruptShard = errors.New("shard: corrupt shard result")

// errShardDown marks operations routed to a shard whose engine could not be
// opened (a WAL-degraded open keeps the rest of the engine serving).
var errShardDown = errors.New("shard: shard unavailable")

// ShardedEngine is a spatially partitioned spatial keyword engine. All
// methods are safe for concurrent use; queries on different shards and
// writes to different shards proceed in parallel.
type ShardedEngine struct {
	cfg    spatialkeyword.Config
	part   Partitioner
	shards []*shardHandle

	// mu guards the global ID map and the corpus-wide vocabulary.
	mu     sync.RWMutex
	assign []shardLoc // global object ID → location
	vocab  *textutil.Vocabulary

	dir string // backing directory; empty = in-memory

	sink obs.Sink // per-query observability sink; nil = disabled

	// Health metrics (optional): shardErrs counts storage faults that
	// degraded a shard, unhealthyGauge tracks how many shards are currently
	// marked unhealthy. See SetHealthMetrics.
	shardErrs      *obs.Counter
	unhealthyGauge *obs.Gauge
}

// SetHealthMetrics installs the observability instruments the engine bumps
// when a shard's storage faults: errs counts every degrading fault, and
// unhealthy gauges the number of shards currently out of rotation. Install
// before serving traffic; the fields are not synchronized.
func (s *ShardedEngine) SetHealthMetrics(errs *obs.Counter, unhealthy *obs.Gauge) {
	s.shardErrs = errs
	s.unhealthyGauge = unhealthy
}

// ShardHealth reports one shard's availability.
type ShardHealth struct {
	Shard   int    `json:"shard"`
	Healthy bool   `json:"healthy"`
	Err     string `json:"err,omitempty"`
}

// Health returns every shard's availability, in shard order.
func (s *ShardedEngine) Health() []ShardHealth {
	out := make([]ShardHealth, len(s.shards))
	for i, sh := range s.shards {
		h := ShardHealth{Shard: i, Healthy: !sh.unhealthy.Load()}
		if !h.Healthy {
			if err, ok := sh.lastErr.Load().(error); ok {
				h.Err = err.Error()
			}
		}
		out[i] = h
	}
	return out
}

// Degraded reports whether any shard is currently marked unhealthy.
func (s *ShardedEngine) Degraded() bool {
	for _, sh := range s.shards {
		if sh.unhealthy.Load() {
			return true
		}
	}
	return false
}

// ResetHealth clears every shard's unhealthy mark — the operator action
// after repairing or replacing a shard's storage. It returns how many
// shards were revived. Shards whose engine could not even be opened
// (WAL-degraded opens leave the handle empty) stay down until reopen.
func (s *ShardedEngine) ResetHealth() int {
	n := 0
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		if sh.unhealthy.CompareAndSwap(true, false) {
			n++
		}
	}
	if s.unhealthyGauge != nil {
		s.unhealthyGauge.Set(int64(s.countUnhealthy()))
	}
	return n
}

// InjectShardFault installs (or clears) a fault hook on shard i's devices.
// Fault-tolerance tests use it to fail one shard of a live engine.
func (s *ShardedEngine) InjectShardFault(i int, f storage.FaultFunc) bool {
	if i < 0 || i >= len(s.shards) || s.shards[i].eng == nil {
		return false
	}
	return s.shards[i].eng.InjectFault(f)
}

// degradeable reports whether err is a storage-level failure of the shard
// (device fault, checksum mismatch, corrupt row or result) rather than a
// problem with the query itself. Degradeable errors take the shard out of
// rotation; query errors propagate to the caller.
func degradeable(err error) bool {
	return storage.IsIOFault(err) ||
		errors.Is(err, objstore.ErrCorrupt) ||
		errors.Is(err, errCorruptShard)
}

// markUnhealthy takes a shard out of rotation after a degradeable fault and
// bumps the health instruments.
func (s *ShardedEngine) markUnhealthy(sh *shardHandle, err error) {
	sh.lastErr.Store(err)
	first := sh.unhealthy.CompareAndSwap(false, true)
	if s.shardErrs != nil {
		s.shardErrs.Inc()
	}
	if first && s.unhealthyGauge != nil {
		s.unhealthyGauge.Set(int64(s.countUnhealthy()))
	}
}

func (s *ShardedEngine) countUnhealthy() int {
	n := 0
	for _, sh := range s.shards {
		if sh.unhealthy.Load() {
			n++
		}
	}
	return n
}

// SetMetricsSink installs (or, with nil, removes) the engine's metrics
// sink. Each fanned-out query delivers one record per shard (Shard set to
// the shard index; traversal counters and that shard's disk I/O) plus one
// aggregate record (Shard = -1) carrying the query's wall latency and
// result count — so a sink like obs.QueryRecorder can expose both
// per-shard I/O series and engine-wide totals. Per-shard I/O attribution
// is exact per query because each shard owns its devices and holds its
// read lock while the meter brackets the drain. Install before serving
// traffic; the field itself is not synchronized.
func (s *ShardedEngine) SetMetricsSink(sink obs.Sink) { s.sink = sink }

// recordShard emits one shard's slice of a fanned-out query.
func (s *ShardedEngine) recordShard(op string, shard int, st spatialkeyword.QueryStats, io storage.Stats, latency time.Duration, err error) {
	if s.sink == nil {
		return
	}
	s.sink.RecordQuery(obs.QueryMetrics{
		Op:                op,
		Shard:             shard,
		NodesExpanded:     st.NodesLoaded,
		EntriesPruned:     st.EntriesPruned,
		NodesEnqueued:     st.NodesEnqueued,
		ObjectsEnqueued:   st.ObjectsEnqueued,
		ObjectsFetched:    st.ObjectsLoaded,
		SigFalsePositives: st.FalsePositives,
		RandomBlocks:      io.Random(),
		SequentialBlocks:  io.Sequential(),
		Latency:           latency,
		Err:               err != nil,
	})
}

// recordQuery emits the aggregate record of a fanned-out query.
func (s *ShardedEngine) recordQuery(op string, k, keywords, results int, qs spatialkeyword.QueryStats, latency time.Duration, err error) {
	if s.sink == nil {
		return
	}
	s.sink.RecordQuery(obs.QueryMetrics{
		Op:                op,
		Shard:             -1,
		K:                 k,
		Keywords:          keywords,
		Results:           results,
		NodesExpanded:     qs.NodesLoaded,
		EntriesPruned:     qs.EntriesPruned,
		NodesEnqueued:     qs.NodesEnqueued,
		ObjectsEnqueued:   qs.ObjectsEnqueued,
		ObjectsFetched:    qs.ObjectsLoaded,
		SigFalsePositives: qs.FalsePositives,
		RandomBlocks:      qs.BlocksRandom,
		SequentialBlocks:  qs.BlocksSequential,
		Latency:           latency,
		Err:               err != nil,
		Degraded:          qs.Degraded,
	})
}

// addStats accumulates one shard's traversal counters into the aggregate.
func addStats(agg *spatialkeyword.QueryStats, st spatialkeyword.QueryStats, io storage.Stats) {
	agg.NodesLoaded += st.NodesLoaded
	agg.ObjectsLoaded += st.ObjectsLoaded
	agg.FalsePositives += st.FalsePositives
	agg.EntriesPruned += st.EntriesPruned
	agg.NodesEnqueued += st.NodesEnqueued
	agg.ObjectsEnqueued += st.ObjectsEnqueued
	agg.BlocksRandom += io.Random()
	agg.BlocksSequential += io.Sequential()
}

// resolve fills in Options defaults and builds the partitioner.
func (o Options) resolve() (Partitioner, error) {
	n := o.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: %d shards", n)
	}
	p := o.Partitioner
	if p == nil {
		var err error
		if !o.Bounds.IsZero() {
			p, err = NewGridPartitioner(n, o.Bounds)
		} else {
			p, err = NewHashPartitioner(n)
		}
		if err != nil {
			return nil, err
		}
	}
	if p.Shards() != n {
		return nil, fmt.Errorf("shard: partitioner has %d shards, options say %d", p.Shards(), n)
	}
	return p, nil
}

// New creates an empty in-memory sharded engine; every shard gets the same
// engine configuration.
func New(cfg spatialkeyword.Config, opts Options) (*ShardedEngine, error) {
	part, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	s := &ShardedEngine{cfg: cfg, part: part, vocab: textutil.NewVocabulary()}
	for i := 0; i < part.Shards(); i++ {
		eng, err := spatialkeyword.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, &shardHandle{idx: i, eng: eng})
	}
	return s, nil
}

// NumShards returns the number of shards.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// Partitioner returns the engine's partitioner.
func (s *ShardedEngine) Partitioner() Partitioner { return s.part }

// analyzer mirrors the per-shard engines' text pipeline so the global
// vocabulary accumulates the same terms the shards index.
func (s *ShardedEngine) analyzer() *textutil.Analyzer {
	if !s.cfg.RemoveStopwords && !s.cfg.Stemming {
		return nil
	}
	a := &textutil.Analyzer{Stemming: s.cfg.Stemming}
	if s.cfg.RemoveStopwords {
		a.Stopwords = textutil.DefaultStopwords()
	}
	return a
}

// Add routes the object to its shard by location, indexes it immediately
// (sharded adds are always flushed, so queries never contend with pending
// buffers), and returns its global ID. With a WAL, the global ID is
// reserved first and logged as the record's tag, so crash recovery can
// rebuild the global→shard assignment from the shards' logs alone.
func (s *ShardedEngine) Add(point []float64, text string) (uint64, error) {
	dim := s.cfg.Dim
	if dim == 0 {
		dim = 2
	}
	if len(point) != dim {
		return 0, fmt.Errorf("shard: point has %d dimensions, engine uses %d", len(point), dim)
	}
	sh := s.shards[s.part.Locate(geo.NewPoint(point...))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.eng == nil {
		return 0, fmt.Errorf("shard %d: %w", sh.idx, errShardDown)
	}
	if !s.cfg.WAL {
		// Mirror the WAL path: reserve the global ID first so the engine-
		// level mutation observer (see SetMutationObserver) sees it as the
		// record tag while the add is applied.
		s.mu.Lock()
		gid := uint64(len(s.assign))
		s.assign = append(s.assign, shardLoc{shard: sh.idx, local: uint64(sh.eng.NumObjects())})
		s.vocab.AddDocWith(s.analyzer(), text)
		s.mu.Unlock()
		if _, err := sh.eng.AddTagged(point, text, gid); err != nil {
			s.mu.Lock()
			s.assign[gid] = tombstone
			s.mu.Unlock()
			return 0, err
		}
		sh.globals = append(sh.globals, gid)
		if err := sh.eng.Flush(); err != nil {
			return gid, err
		}
		return gid, nil
	}
	// WAL path: reserve the global ID before the durable append so the log
	// record can carry it. The shard lock serializes per-shard adds, so
	// global order restricted to one shard equals its local insertion order
	// — the property recovery relies on.
	s.mu.Lock()
	gid := uint64(len(s.assign))
	s.assign = append(s.assign, shardLoc{shard: sh.idx, local: uint64(sh.eng.NumObjects())})
	s.vocab.AddDocWith(s.analyzer(), text)
	s.mu.Unlock()
	_, err := sh.eng.AddTagged(point, text, gid)
	if err != nil {
		// The record may or may not have reached the log durably (a failed
		// sync leaves that unknown), so the global ID must never be reused —
		// recovery could resurrect the record under it. Tombstone it and
		// take the shard out of rotation; the shard's sticky-broken WAL
		// guarantees the local ID cannot alias either.
		s.mu.Lock()
		s.assign[gid] = tombstone
		s.mu.Unlock()
		if degradeable(err) {
			s.markUnhealthy(sh, err)
		}
		return 0, fmt.Errorf("shard %d: %w", sh.idx, err)
	}
	if err := sh.eng.Flush(); err != nil {
		// The add is durable in the log; only the in-memory apply failed.
		// Keep the assignment (recovery will replay it) but stop using the
		// shard.
		sh.globals = append(sh.globals, gid)
		if degradeable(err) {
			s.markUnhealthy(sh, err)
		}
		return gid, fmt.Errorf("shard %d: %w", sh.idx, err)
	}
	sh.globals = append(sh.globals, gid)
	return gid, nil
}

// Flush is a no-op: sharded adds index eagerly. It exists so the engine
// satisfies the same surface as a single Engine.
func (s *ShardedEngine) Flush() error { return nil }

// locate resolves a global ID, or fails with the engine's error values.
// Tombstoned IDs (reservations that never became durable) are unknown.
func (s *ShardedEngine) locate(gid uint64) (shardLoc, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if gid >= uint64(len(s.assign)) || s.assign[gid].shard < 0 {
		return shardLoc{}, fmt.Errorf("%w: %d", spatialkeyword.ErrUnknownID, gid)
	}
	return s.assign[gid], nil
}

// reglobal rewrites a shard-local error to name the global ID.
func reglobal(err error, gid uint64) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, spatialkeyword.ErrDeleted):
		return fmt.Errorf("%w: %d", spatialkeyword.ErrDeleted, gid)
	case errors.Is(err, spatialkeyword.ErrUnknownID):
		return fmt.Errorf("%w: %d", spatialkeyword.ErrUnknownID, gid)
	default:
		return err
	}
}

// Get returns a stored object by global ID.
func (s *ShardedEngine) Get(gid uint64) (spatialkeyword.Object, error) {
	loc, err := s.locate(gid)
	if err != nil {
		return spatialkeyword.Object{}, err
	}
	sh := s.shards[loc.shard]
	sh.mu.RLock()
	if sh.eng == nil {
		sh.mu.RUnlock()
		return spatialkeyword.Object{}, fmt.Errorf("shard %d: %w", sh.idx, errShardDown)
	}
	obj, err := sh.eng.Get(loc.local)
	sh.mu.RUnlock()
	if err != nil {
		return spatialkeyword.Object{}, reglobal(err, gid)
	}
	obj.ID = gid
	return obj, nil
}

// Delete removes an object from its shard's index.
func (s *ShardedEngine) Delete(gid uint64) error {
	loc, err := s.locate(gid)
	if err != nil {
		return err
	}
	sh := s.shards[loc.shard]
	sh.mu.Lock()
	if sh.eng == nil {
		sh.mu.Unlock()
		return fmt.Errorf("shard %d: %w", sh.idx, errShardDown)
	}
	err = sh.eng.Delete(loc.local)
	sh.mu.Unlock()
	return reglobal(err, gid)
}

// fanOut runs fn once per listed shard (nil = all shards) in parallel.
// Shards already marked unhealthy are skipped, and a shard whose fn fails
// with a storage-level fault (see degradeable) is taken out of rotation
// mid-query; both cases set the degraded flag and the query completes on
// the remaining shards with partial results. Non-storage errors — bad
// query dimensions, unknown IDs — fail the fan-out (first one wins).
func (s *ShardedEngine) fanOut(which []int, fn func(sh *shardHandle) error) (degraded bool, err error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		deg      atomic.Bool
	)
	run := func(sh *shardHandle) {
		defer wg.Done()
		if sh.unhealthy.Load() {
			deg.Store(true)
			return
		}
		if err := fn(sh); err != nil {
			if degradeable(err) {
				s.markUnhealthy(sh, err)
				deg.Store(true)
				return
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	}
	if which == nil {
		for _, sh := range s.shards {
			wg.Add(1)
			go run(sh)
		}
	} else {
		for _, i := range which {
			wg.Add(1)
			go run(s.shards[i])
		}
	}
	wg.Wait()
	return deg.Load(), firstErr
}

// streamIter abstracts the two distance-ordered streams (point and area).
type streamIter interface {
	Next() (spatialkeyword.Result, bool, error)
	PeekBound() (float64, bool)
	Stats() spatialkeyword.QueryStats
}

// drainDistanceStream pulls one shard's distance-ordered stream into the
// collector until the shard is exhausted or its bound proves it cannot beat
// the global k-th result.
func drainDistanceStream(sh *shardHandle, it streamIter, col *collector) error {
	for {
		if bound, ok := it.PeekBound(); !ok || !col.admissible(bound) {
			return nil
		}
		r, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		gid, err := sh.globalID(r.Object.ID)
		if err != nil {
			return err
		}
		col.offer(r.Dist, gid, r)
	}
}

// TopK returns the k objects containing every keyword, nearest to point
// first — fanned out across all shards.
func (s *ShardedEngine) TopK(k int, point []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	res, _, err := s.TopKWithStats(k, point, keywords...)
	return res, err
}

// TopKWithStats is TopK plus aggregated per-shard work counters.
func (s *ShardedEngine) TopKWithStats(k int, point []float64, keywords ...string) ([]spatialkeyword.Result, spatialkeyword.QueryStats, error) {
	var agg spatialkeyword.QueryStats
	if k <= 0 {
		return nil, agg, nil
	}
	start := time.Now()
	col := newCollector(k, true)
	var statsMu sync.Mutex
	degraded, err := s.fanOut(nil, func(sh *shardHandle) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		shardStart := time.Now()
		stop := sh.eng.MeterIOStats()
		it, err := sh.eng.Search(point, keywords...)
		if err != nil {
			s.recordShard("topk", sh.idx, spatialkeyword.QueryStats{}, stop(), time.Since(shardStart), err)
			return err
		}
		err = drainDistanceStream(sh, it, col)
		st := it.Stats()
		io := stop()
		s.recordShard("topk", sh.idx, st, io, time.Since(shardStart), err)
		statsMu.Lock()
		addStats(&agg, st, io)
		statsMu.Unlock()
		return err
	})
	agg.Degraded = degraded
	results := distanceResults(col)
	s.recordQuery("topk", k, len(keywords), len(results), agg, time.Since(start), err)
	if err != nil {
		return nil, agg, err
	}
	return results, agg, nil
}

// distanceResults converts a collector's items back to engine results with
// global IDs.
func distanceResults(col *collector) []spatialkeyword.Result {
	items := col.results()
	out := make([]spatialkeyword.Result, 0, len(items))
	for _, it := range items {
		r := it.val.(spatialkeyword.Result)
		r.Object.ID = it.id
		out = append(out, r)
	}
	return out
}

// TopKArea returns the k objects containing every keyword nearest to the
// query rectangle (zero distance inside it). Like any distance-ranked
// query it fans out to every shard: objects far outside a shard's region
// can still be among the k nearest to the area.
func (s *ShardedEngine) TopKArea(k int, lo, hi []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	if k <= 0 {
		return nil, nil
	}
	start := time.Now()
	var agg spatialkeyword.QueryStats
	var statsMu sync.Mutex
	col := newCollector(k, true)
	degraded, err := s.fanOut(nil, func(sh *shardHandle) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		shardStart := time.Now()
		stop := sh.eng.MeterIOStats()
		it, err := sh.eng.SearchArea(lo, hi, keywords...)
		if err != nil {
			s.recordShard("area", sh.idx, spatialkeyword.QueryStats{}, stop(), time.Since(shardStart), err)
			return err
		}
		err = drainDistanceStream(sh, it, col)
		st := it.Stats()
		io := stop()
		s.recordShard("area", sh.idx, st, io, time.Since(shardStart), err)
		statsMu.Lock()
		addStats(&agg, st, io)
		statsMu.Unlock()
		return err
	})
	agg.Degraded = degraded
	results := distanceResults(col)
	s.recordQuery("area", k, len(keywords), len(results), agg, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// corpusStats snapshots the engine-wide document count and exposes a
// concurrency-safe document-frequency reader, so every shard of one ranked
// query scores with the same global idf weights a single engine would use.
func (s *ShardedEngine) corpusStats() spatialkeyword.CorpusStats {
	s.mu.RLock()
	numDocs := s.vocab.NumDocs()
	s.mu.RUnlock()
	return spatialkeyword.CorpusStats{
		NumDocs: numDocs,
		DocFreq: func(word string) int {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return s.vocab.DocFreq(word)
		},
	}
}

// TopKRanked returns the k objects with the best combined
// relevance-and-proximity score, fanned out across all shards and merged by
// descending score (score ties broken by smallest global ID).
func (s *ShardedEngine) TopKRanked(k int, point []float64, keywords ...string) ([]spatialkeyword.RankedResult, error) {
	if k <= 0 {
		return nil, nil
	}
	start := time.Now()
	cs := s.corpusStats()
	var agg spatialkeyword.QueryStats
	var statsMu sync.Mutex
	col := newCollector(k, false)
	degraded, err := s.fanOut(nil, func(sh *shardHandle) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		shardStart := time.Now()
		stop := sh.eng.MeterIOStats()
		it, err := sh.eng.SearchRankedWith(cs, point, keywords...)
		if err != nil {
			s.recordShard("ranked", sh.idx, spatialkeyword.QueryStats{}, stop(), time.Since(shardStart), err)
			return err
		}
		drain := func() error {
			for {
				if bound, ok := it.PeekBound(); !ok || !col.admissible(bound) {
					return nil
				}
				r, ok, err := it.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				gid, err := sh.globalID(r.Object.ID)
				if err != nil {
					return err
				}
				col.offer(r.Score, gid, r)
			}
		}
		err = drain()
		st := it.Stats()
		io := stop()
		s.recordShard("ranked", sh.idx, st, io, time.Since(shardStart), err)
		statsMu.Lock()
		addStats(&agg, st, io)
		statsMu.Unlock()
		return err
	})
	agg.Degraded = degraded
	if err != nil {
		s.recordQuery("ranked", k, len(keywords), 0, agg, time.Since(start), err)
		return nil, err
	}
	items := col.results()
	out := make([]spatialkeyword.RankedResult, 0, len(items))
	for _, it := range items {
		r := it.val.(spatialkeyword.RankedResult)
		r.Object.ID = it.id
		out = append(out, r)
	}
	s.recordQuery("ranked", k, len(keywords), len(out), agg, time.Since(start), nil)
	return out, nil
}

// WithinArea returns every object inside the rectangle containing all the
// keywords, ordered by global ID. Only shards whose region intersects the
// rectangle are consulted.
func (s *ShardedEngine) WithinArea(lo, hi []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	which := s.part.Overlapping(geo.NewRect(geo.NewPoint(lo...), geo.NewPoint(hi...)))
	var (
		mu  sync.Mutex
		all []spatialkeyword.Result
	)
	_, err := s.fanOut(which, func(sh *shardHandle) error {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		res, err := sh.eng.WithinArea(lo, hi, keywords...)
		if err != nil {
			return err
		}
		for i := range res {
			gid, err := sh.globalID(res[i].Object.ID)
			if err != nil {
				return err
			}
			res[i].Object.ID = gid
		}
		mu.Lock()
		all = append(all, res...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortResultsByID(all)
	return all, nil
}

// sortResultsByID orders merged range results by global ID, matching the
// single engine's output order.
func sortResultsByID(rs []spatialkeyword.Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Object.ID < rs[j].Object.ID })
}

// Stats sums the per-shard engine statistics: object counts and disk
// footprints add up, tree height reports the tallest shard, and the
// vocabulary is the corpus-wide count (shards can share words).
func (s *ShardedEngine) Stats() spatialkeyword.Stats {
	var out spatialkeyword.Stats
	for _, st := range s.ShardStats() {
		out.Objects += st.Objects
		out.IndexMB += st.IndexMB
		out.ObjectFileMB += st.ObjectFileMB
		if st.TreeHeight > out.TreeHeight {
			out.TreeHeight = st.TreeHeight
		}
	}
	s.mu.RLock()
	out.Vocabulary = s.vocab.NumWords()
	s.mu.RUnlock()
	return out
}

// NodeCacheStats sums the per-shard decoded-node cache counters. Shards
// never share a cache, so the sum is exact.
func (s *ShardedEngine) NodeCacheStats() spatialkeyword.NodeCacheStats {
	var out spatialkeyword.NodeCacheStats
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		st := sh.eng.NodeCacheStats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.Invalidations += st.Invalidations
	}
	return out
}

// MeterShardIO snapshots every shard's disk counters; the returned stop
// function reports each shard's block accesses since the snapshot, in shard
// order. Shards are independent devices, so a fan-out query's modeled disk
// time is the maximum — not the sum — of the per-shard times; the benchmark
// harness uses this hook for that accounting. Attribution is exact only
// while the engine runs one query at a time.
func (s *ShardedEngine) MeterShardIO() func() []storage.Stats {
	stops := make([]func() storage.Stats, len(s.shards))
	for i, sh := range s.shards {
		if sh.eng == nil {
			stops[i] = func() storage.Stats { return storage.Stats{} }
			continue
		}
		stops[i] = sh.eng.MeterIOStats()
	}
	return func() []storage.Stats {
		out := make([]storage.Stats, len(stops))
		for i, stop := range stops {
			out[i] = stop()
		}
		return out
	}
}

// ShardStats returns each shard's own engine statistics, in shard order.
// An unavailable shard reports the zero value.
func (s *ShardedEngine) ShardStats() []spatialkeyword.Stats {
	out := make([]spatialkeyword.Stats, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		if sh.eng != nil {
			out[i] = sh.eng.Stats()
		}
		sh.mu.RUnlock()
	}
	return out
}

// WALInfo aggregates every shard's write-ahead-log state: counters sum,
// Enabled reflects the configuration, and Broken carries the first shard's
// sticky failure (shards that failed to open at all count one torn-tail-
// free, zero-record entry — their state is unknown until repaired).
func (s *ShardedEngine) WALInfo() spatialkeyword.WALInfo {
	info := spatialkeyword.WALInfo{Enabled: s.cfg.WAL}
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		sh.mu.RLock()
		wi := sh.eng.WALInfo()
		sh.mu.RUnlock()
		info.ReplayedRecords += wi.ReplayedRecords
		info.TornTails += wi.TornTails
		info.Appends += wi.Appends
		info.Fsyncs += wi.Fsyncs
		if info.Broken == nil && wi.Broken != nil {
			info.Broken = fmt.Errorf("shard %d: %w", sh.idx, wi.Broken)
		}
	}
	return info
}

// SetWALObserver installs the metrics hooks on every shard's log (see the
// engine's SetWALObserver). Install before serving traffic.
func (s *ShardedEngine) SetWALObserver(onAppend func(), onFsync func(time.Duration)) {
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		sh.eng.SetWALObserver(onAppend, onFsync)
	}
}
