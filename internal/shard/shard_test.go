package shard

import (
	"errors"
	"strings"
	"testing"

	"spatialkeyword"
	"spatialkeyword/internal/geo"
)

func newTestEngine(t *testing.T, shards int) *ShardedEngine {
	t.Helper()
	s, err := New(spatialkeyword.Config{SignatureBytes: 16}, Options{
		Shards: shards,
		Bounds: geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(100, 100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedLifecycle(t *testing.T) {
	s := newTestEngine(t, 4)
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	rows := []struct {
		pt   []float64
		text string
	}{
		{[]float64{10, 10}, "cuban cafe espresso pastelitos"},
		{[]float64{90, 90}, "beach bar cocktails live music"},
		{[]float64{12, 88}, "espresso bar wifi"},
		{[]float64{88, 12}, "tapas cafe espresso patio"},
	}
	for i, r := range rows {
		id, err := s.Add(r.pt, r.text)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i) {
			t.Fatalf("row %d got id %d: global ids must be insertion-ordered", i, id)
		}
	}

	// Objects landed on different shards (the corners of a 2×2 grid).
	st := s.Stats()
	if st.Objects != 4 {
		t.Errorf("Stats.Objects = %d", st.Objects)
	}
	perShard := s.ShardStats()
	if len(perShard) != 4 {
		t.Fatalf("ShardStats len = %d", len(perShard))
	}
	spread := 0
	for _, ss := range perShard {
		if ss.Objects > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("objects on %d shards, want spread across at least 2", spread)
	}

	// Get translates IDs back.
	obj, err := s.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if obj.ID != 2 || !strings.Contains(obj.Text, "wifi") {
		t.Errorf("Get(2) = %+v", obj)
	}

	// TopK across shards.
	res, err := s.TopK(3, []float64{11, 11}, "espresso")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("TopK = %d results", len(res))
	}
	if res[0].Object.ID != 0 {
		t.Errorf("nearest espresso = id %d, want 0", res[0].Object.ID)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Errorf("results out of order: %v then %v", res[i-1].Dist, res[i].Dist)
		}
	}

	// Delete and error mapping carry global IDs.
	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(0); !errors.Is(err, spatialkeyword.ErrDeleted) || !strings.Contains(err.Error(), "0") {
		t.Errorf("double delete = %v", err)
	}
	if _, err := s.Get(0); !errors.Is(err, spatialkeyword.ErrDeleted) {
		t.Errorf("Get(deleted) = %v", err)
	}
	if _, err := s.Get(99); !errors.Is(err, spatialkeyword.ErrUnknownID) {
		t.Errorf("Get(99) = %v", err)
	}
	if err := s.Delete(99); !errors.Is(err, spatialkeyword.ErrUnknownID) {
		t.Errorf("Delete(99) = %v", err)
	}

	res, err = s.TopK(5, []float64{11, 11}, "espresso")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Object.ID == 0 {
			t.Error("deleted object returned")
		}
	}
	if s.Stats().Objects != 3 {
		t.Errorf("Objects after delete = %d", s.Stats().Objects)
	}
}

func TestShardedQueryStats(t *testing.T) {
	s := newTestEngine(t, 3)
	for i := 0; i < 60; i++ {
		pt := []float64{float64(i%10) * 10, float64(i/10) * 15}
		if _, err := s.Add(pt, "store coffee beans roaster"); err != nil {
			t.Fatal(err)
		}
	}
	res, qs, err := s.TopKWithStats(5, []float64{50, 50}, "coffee")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("results = %d", len(res))
	}
	if qs.NodesLoaded == 0 || qs.ObjectsLoaded < 5 {
		t.Errorf("stats not aggregated: %+v", qs)
	}
	if qs.BlocksRandom+qs.BlocksSequential == 0 {
		t.Errorf("no I/O accounted: %+v", qs)
	}
}

func TestShardedEmptyAndSmallK(t *testing.T) {
	s := newTestEngine(t, 2)
	res, err := s.TopK(5, []float64{1, 1}, "nothing")
	if err != nil || len(res) != 0 {
		t.Errorf("empty engine TopK = %v, %v", res, err)
	}
	if res, err := s.TopKRanked(0, []float64{1, 1}, "x"); err != nil || res != nil {
		t.Errorf("k=0 ranked = %v, %v", res, err)
	}
	if _, err := s.Add([]float64{5, 5}, "solo espresso"); err != nil {
		t.Fatal(err)
	}
	res, err = s.TopK(10, []float64{0, 0}, "espresso")
	if err != nil || len(res) != 1 {
		t.Errorf("TopK = %v, %v", res, err)
	}
	if err := s.Flush(); err != nil {
		t.Errorf("Flush = %v", err)
	}
	if err := s.Save(); !errors.Is(err, spatialkeyword.ErrNotDurable) {
		t.Errorf("Save on memory engine = %v", err)
	}
}

func TestShardedWithinAreaRouting(t *testing.T) {
	s := newTestEngine(t, 4)
	var want []uint64
	for x := 5; x < 100; x += 10 {
		for y := 5; y < 100; y += 10 {
			id, err := s.Add([]float64{float64(x), float64(y)}, "pizza slice oven")
			if err != nil {
				t.Fatal(err)
			}
			if x < 50 && y < 50 {
				want = append(want, id)
			}
		}
	}
	res, err := s.WithinArea([]float64{0, 0}, []float64{49, 49}, "pizza")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(want) {
		t.Fatalf("WithinArea = %d results, want %d", len(res), len(want))
	}
	for i, r := range res {
		if i > 0 && res[i-1].Object.ID >= r.Object.ID {
			t.Fatal("range results not ordered by global ID")
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(spatialkeyword.Config{}, Options{Shards: -1}); err == nil {
		t.Error("negative shards should fail")
	}
	p, _ := NewHashPartitioner(3)
	if _, err := New(spatialkeyword.Config{}, Options{Shards: 2, Partitioner: p}); err == nil {
		t.Error("mismatched partitioner should fail")
	}
	// Default shards (0) means one shard, hash partitioned.
	s, err := New(spatialkeyword.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 1 {
		t.Errorf("default NumShards = %d", s.NumShards())
	}
	if _, ok := s.Partitioner().(*HashPartitioner); !ok {
		t.Errorf("default partitioner = %T, want hash", s.Partitioner())
	}
}
