package shard

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/geo"
)

// TestShardedConcurrentStress hammers one sharded engine from many
// goroutines — inserts, deletes, and all three query types at once — to give
// the race detector something to chew on, then quiesces and cross-checks the
// final state against a single engine replaying the same history. Query
// results during the storm are only sanity-checked (they race with writes by
// design); the post-quiesce comparison is exact.
func TestShardedConcurrentStress(t *testing.T) {
	const (
		writers     = 4
		rowsPerGor  = 60
		queriers    = 4
		queryRounds = 40
		deleteEvery = 3
	)
	words := []string{"espresso", "harbor", "noodle", "gallery", "vinyl", "sauna", "taqueria", "cinema"}
	rowText := func(w, i int) string {
		return fmt.Sprintf("%s %s shop number %d", words[(w+i)%len(words)], words[(w*3+i*5)%len(words)], i)
	}

	s, err := New(spatialkeyword.Config{SignatureBytes: 16}, Options{
		Shards: 4,
		Bounds: geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(1000, 1000)),
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		histMu  sync.Mutex
		history = map[uint64]spatialkeyword.Object{} // global id → row
		deleted = map[uint64]bool{}
	)
	toDelete := make(chan uint64, writers*rowsPerGor)
	var writeWG sync.WaitGroup

	// Writers: each inserts its own deterministic rows, records the assigned
	// global id, and nominates every deleteEvery-th row for deletion.
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < rowsPerGor; i++ {
				pt := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
				text := rowText(w, i)
				id, err := s.Add(pt, text)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				histMu.Lock()
				history[id] = spatialkeyword.Object{ID: id, Point: pt, Text: text}
				histMu.Unlock()
				if i%deleteEvery == 0 {
					toDelete <- id
				}
			}
		}(w)
	}

	// Deleter: consumes nominations concurrently with the writers.
	var delWG sync.WaitGroup
	delWG.Add(1)
	go func() {
		defer delWG.Done()
		for id := range toDelete {
			if err := s.Delete(id); err != nil {
				t.Errorf("delete %d: %v", id, err)
				return
			}
			histMu.Lock()
			deleted[id] = true
			histMu.Unlock()
		}
	}()

	// Queriers: all three ranked query types plus range, point lookups, and
	// stats, racing with the writes.
	var queryWG sync.WaitGroup
	for q := 0; q < queriers; q++ {
		queryWG.Add(1)
		go func(q int) {
			defer queryWG.Done()
			rng := rand.New(rand.NewSource(int64(q) + 100))
			for i := 0; i < queryRounds; i++ {
				p := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
				kw := words[rng.Intn(len(words))]
				res, err := s.TopK(5, p, kw)
				if err != nil {
					t.Errorf("querier %d TopK: %v", q, err)
					return
				}
				for j := 1; j < len(res); j++ {
					if res[j].Dist < res[j-1].Dist {
						t.Errorf("querier %d: TopK out of order", q)
						return
					}
				}
				if _, err := s.TopKSerial(5, p, kw); err != nil {
					t.Errorf("querier %d TopKSerial: %v", q, err)
				}
				if _, err := s.TopKRanked(5, p, kw, words[rng.Intn(len(words))]); err != nil {
					t.Errorf("querier %d TopKRanked: %v", q, err)
					return
				}
				lo := []float64{p[0] - 100, p[1] - 100}
				hi := []float64{p[0] + 100, p[1] + 100}
				if _, err := s.TopKArea(5, lo, hi, kw); err != nil {
					t.Errorf("querier %d TopKArea: %v", q, err)
					return
				}
				if _, err := s.WithinArea(lo, hi, kw); err != nil {
					t.Errorf("querier %d WithinArea: %v", q, err)
					return
				}
				if n := s.Stats().Objects; n < 0 {
					t.Errorf("querier %d: negative object count %d", q, n)
					return
				}
			}
		}(q)
	}

	writeWG.Wait()
	close(toDelete)
	delWG.Wait()
	queryWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced cross-check: replay the same history (rows in global ID
	// order, then the deletions) into a single engine — IDs line up because
	// sharded global IDs are insertion-ordered — and compare every query
	// type exactly.
	total := writers * rowsPerGor
	if len(history) != total {
		t.Fatalf("recorded %d rows, want %d", len(history), total)
	}
	single, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < uint64(total); id++ {
		row, ok := history[id]
		if !ok {
			t.Fatalf("global id %d never recorded: ids must be dense", id)
		}
		got, err := single.Add(row.Point, row.Text)
		if err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("replay assigned id %d, want %d", got, id)
		}
	}
	for id := range deleted {
		if err := single.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 10; i++ {
		p := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
		kws := []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]}
		want, err := single.TopK(7, p, kws[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.TopK(7, p, kws[0])
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "quiesced TopK", want, got)

		wantR, err := single.TopKRanked(7, p, kws...)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := s.TopKRanked(7, p, kws...)
		if err != nil {
			t.Fatal(err)
		}
		sameRanked(t, "quiesced TopKRanked", wantR, gotR)

		lo := []float64{p[0] - 150, p[1] - 150}
		hi := []float64{p[0] + 150, p[1] + 150}
		wantW, err := single.WithinArea(lo, hi, kws[0])
		if err != nil {
			t.Fatal(err)
		}
		gotW, err := s.WithinArea(lo, hi, kws[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(gotW) != len(wantW) {
			t.Fatalf("quiesced WithinArea = %d results, want %d", len(gotW), len(wantW))
		}
		for j := range wantW {
			if gotW[j].Object.ID != wantW[j].Object.ID {
				t.Fatalf("quiesced WithinArea[%d] = id %d, want %d", j, gotW[j].Object.ID, wantW[j].Object.ID)
			}
		}
	}
}

// checkNoGoroutineLeak fails the test if it ends with more goroutines than
// it started with (after a grace period for runtime bookkeeping).
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// idKey flattens a result list into a comparable string of object IDs.
func idKey[T any](res []T, id func(T) uint64) string {
	ids := make([]uint64, len(res))
	for i, r := range res {
		ids[i] = id(r)
	}
	return fmt.Sprint(ids)
}

// TestConcurrentWarmQueries hammers the warm read hot path — the shared
// decoded-node cache, the pooled traversal scratch, and the per-iterator row
// scratch — from many goroutines at once, against both a single Engine and a
// ShardedEngine, checking every answer against a single-threaded oracle
// computed up front. Run under -race this is the data-race gate for the
// packed node cache; the goroutine-leak check covers the sharded fan-out's
// worker lifecycle. Unlike TestShardedConcurrentStress there are no writers:
// the point is that a purely warm, hit-dominated workload stays correct and
// race-free under contention.
func TestConcurrentWarmQueries(t *testing.T) {
	checkNoGoroutineLeak(t)
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	sh := newTestEngine(t, 4)

	words := []string{"pizza", "cafe", "bar", "sushi", "deli", "pub", "grill", "bakery", "pool", "wifi"}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		pt := []float64{rng.Float64() * 100, rng.Float64() * 100}
		text := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		if _, err := eng.Add(pt, text); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Add(pt, text); err != nil {
			t.Fatal(err)
		}
	}

	type stressQuery struct {
		point    []float64
		keywords []string
	}
	queries := make([]stressQuery, 16)
	for i := range queries {
		queries[i] = stressQuery{
			point:    []float64{rng.Float64() * 100, rng.Float64() * 100},
			keywords: []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
		}
	}
	topkID := func(r spatialkeyword.Result) uint64 { return r.Object.ID }
	rankedID := func(r spatialkeyword.RankedResult) uint64 { return r.Object.ID }

	// Single-threaded oracle answers; these first runs also warm the node
	// caches, so the concurrent phase exercises the hit path.
	engTopK := make([]string, len(queries))
	engRanked := make([]string, len(queries))
	shTopK := make([]string, len(queries))
	shRanked := make([]string, len(queries))
	for i, q := range queries {
		res, err := eng.TopK(5, q.point, q.keywords...)
		if err != nil {
			t.Fatal(err)
		}
		engTopK[i] = idKey(res, topkID)
		rres, err := eng.TopKRanked(5, q.point, q.keywords...)
		if err != nil {
			t.Fatal(err)
		}
		engRanked[i] = idKey(rres, rankedID)
		sres, err := sh.TopK(5, q.point, q.keywords...)
		if err != nil {
			t.Fatal(err)
		}
		shTopK[i] = idKey(sres, topkID)
		srres, err := sh.TopKRanked(5, q.point, q.keywords...)
		if err != nil {
			t.Fatal(err)
		}
		shRanked[i] = idKey(srres, rankedID)
	}

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i, q := range queries {
					res, err := eng.TopK(5, q.point, q.keywords...)
					if err != nil {
						errc <- err
						return
					}
					if got := idKey(res, topkID); got != engTopK[i] {
						errc <- fmt.Errorf("worker %d query %d: engine topk %s, oracle %s", w, i, got, engTopK[i])
						return
					}
					rres, err := eng.TopKRanked(5, q.point, q.keywords...)
					if err != nil {
						errc <- err
						return
					}
					if got := idKey(rres, rankedID); got != engRanked[i] {
						errc <- fmt.Errorf("worker %d query %d: engine ranked %s, oracle %s", w, i, got, engRanked[i])
						return
					}
					sres, err := sh.TopK(5, q.point, q.keywords...)
					if err != nil {
						errc <- err
						return
					}
					if got := idKey(sres, topkID); got != shTopK[i] {
						errc <- fmt.Errorf("worker %d query %d: sharded topk %s, oracle %s", w, i, got, shTopK[i])
						return
					}
					srres, err := sh.TopKRanked(5, q.point, q.keywords...)
					if err != nil {
						errc <- err
						return
					}
					if got := idKey(srres, rankedID); got != shRanked[i] {
						errc <- fmt.Errorf("worker %d query %d: sharded ranked %s, oracle %s", w, i, got, shRanked[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The cache actually carried the load: warm queries must be hitting.
	if st := eng.NodeCacheStats(); st.Hits == 0 {
		t.Error("engine node cache saw no hits under the warm workload")
	}
	if st := sh.NodeCacheStats(); st.Hits == 0 {
		t.Error("sharded node cache saw no hits under the warm workload")
	}
}
