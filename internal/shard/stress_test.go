package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spatialkeyword"
	"spatialkeyword/internal/geo"
)

// TestShardedConcurrentStress hammers one sharded engine from many
// goroutines — inserts, deletes, and all three query types at once — to give
// the race detector something to chew on, then quiesces and cross-checks the
// final state against a single engine replaying the same history. Query
// results during the storm are only sanity-checked (they race with writes by
// design); the post-quiesce comparison is exact.
func TestShardedConcurrentStress(t *testing.T) {
	const (
		writers     = 4
		rowsPerGor  = 60
		queriers    = 4
		queryRounds = 40
		deleteEvery = 3
	)
	words := []string{"espresso", "harbor", "noodle", "gallery", "vinyl", "sauna", "taqueria", "cinema"}
	rowText := func(w, i int) string {
		return fmt.Sprintf("%s %s shop number %d", words[(w+i)%len(words)], words[(w*3+i*5)%len(words)], i)
	}

	s, err := New(spatialkeyword.Config{SignatureBytes: 16}, Options{
		Shards: 4,
		Bounds: geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(1000, 1000)),
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		histMu  sync.Mutex
		history = map[uint64]spatialkeyword.Object{} // global id → row
		deleted = map[uint64]bool{}
	)
	toDelete := make(chan uint64, writers*rowsPerGor)
	var writeWG sync.WaitGroup

	// Writers: each inserts its own deterministic rows, records the assigned
	// global id, and nominates every deleteEvery-th row for deletion.
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < rowsPerGor; i++ {
				pt := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
				text := rowText(w, i)
				id, err := s.Add(pt, text)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				histMu.Lock()
				history[id] = spatialkeyword.Object{ID: id, Point: pt, Text: text}
				histMu.Unlock()
				if i%deleteEvery == 0 {
					toDelete <- id
				}
			}
		}(w)
	}

	// Deleter: consumes nominations concurrently with the writers.
	var delWG sync.WaitGroup
	delWG.Add(1)
	go func() {
		defer delWG.Done()
		for id := range toDelete {
			if err := s.Delete(id); err != nil {
				t.Errorf("delete %d: %v", id, err)
				return
			}
			histMu.Lock()
			deleted[id] = true
			histMu.Unlock()
		}
	}()

	// Queriers: all three ranked query types plus range, point lookups, and
	// stats, racing with the writes.
	var queryWG sync.WaitGroup
	for q := 0; q < queriers; q++ {
		queryWG.Add(1)
		go func(q int) {
			defer queryWG.Done()
			rng := rand.New(rand.NewSource(int64(q) + 100))
			for i := 0; i < queryRounds; i++ {
				p := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
				kw := words[rng.Intn(len(words))]
				res, err := s.TopK(5, p, kw)
				if err != nil {
					t.Errorf("querier %d TopK: %v", q, err)
					return
				}
				for j := 1; j < len(res); j++ {
					if res[j].Dist < res[j-1].Dist {
						t.Errorf("querier %d: TopK out of order", q)
						return
					}
				}
				if _, err := s.TopKSerial(5, p, kw); err != nil {
					t.Errorf("querier %d TopKSerial: %v", q, err)
				}
				if _, err := s.TopKRanked(5, p, kw, words[rng.Intn(len(words))]); err != nil {
					t.Errorf("querier %d TopKRanked: %v", q, err)
					return
				}
				lo := []float64{p[0] - 100, p[1] - 100}
				hi := []float64{p[0] + 100, p[1] + 100}
				if _, err := s.TopKArea(5, lo, hi, kw); err != nil {
					t.Errorf("querier %d TopKArea: %v", q, err)
					return
				}
				if _, err := s.WithinArea(lo, hi, kw); err != nil {
					t.Errorf("querier %d WithinArea: %v", q, err)
					return
				}
				if n := s.Stats().Objects; n < 0 {
					t.Errorf("querier %d: negative object count %d", q, n)
					return
				}
			}
		}(q)
	}

	writeWG.Wait()
	close(toDelete)
	delWG.Wait()
	queryWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced cross-check: replay the same history (rows in global ID
	// order, then the deletions) into a single engine — IDs line up because
	// sharded global IDs are insertion-ordered — and compare every query
	// type exactly.
	total := writers * rowsPerGor
	if len(history) != total {
		t.Fatalf("recorded %d rows, want %d", len(history), total)
	}
	single, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < uint64(total); id++ {
		row, ok := history[id]
		if !ok {
			t.Fatalf("global id %d never recorded: ids must be dense", id)
		}
		got, err := single.Add(row.Point, row.Text)
		if err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("replay assigned id %d, want %d", got, id)
		}
	}
	for id := range deleted {
		if err := single.Delete(id); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 10; i++ {
		p := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
		kws := []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]}
		want, err := single.TopK(7, p, kws[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.TopK(7, p, kws[0])
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "quiesced TopK", want, got)

		wantR, err := single.TopKRanked(7, p, kws...)
		if err != nil {
			t.Fatal(err)
		}
		gotR, err := s.TopKRanked(7, p, kws...)
		if err != nil {
			t.Fatal(err)
		}
		sameRanked(t, "quiesced TopKRanked", wantR, gotR)

		lo := []float64{p[0] - 150, p[1] - 150}
		hi := []float64{p[0] + 150, p[1] + 150}
		wantW, err := single.WithinArea(lo, hi, kws[0])
		if err != nil {
			t.Fatal(err)
		}
		gotW, err := s.WithinArea(lo, hi, kws[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(gotW) != len(wantW) {
			t.Fatalf("quiesced WithinArea = %d results, want %d", len(gotW), len(wantW))
		}
		for j := range wantW {
			if gotW[j].Object.ID != wantW[j].Object.ID {
				t.Fatalf("quiesced WithinArea[%d] = id %d, want %d", j, gotW[j].Object.ID, wantW[j].Object.ID)
			}
		}
	}
}
