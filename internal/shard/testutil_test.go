package shard

import (
	"math/rand"
	"testing"

	"spatialkeyword"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
)

// loadDataset generates a seed dataset into a scratch store and returns its
// rows plus corpus statistics (for query keywords) and the dataset MBR.
func loadDataset(t *testing.T, spec dataset.Spec) ([]spatialkeyword.Object, *dataset.Stats, geo.Rect) {
	t.Helper()
	st := objstore.New(storage.NewDisk(storage.DefaultBlockSize))
	stats, err := dataset.Generate(spec, st)
	if err != nil {
		t.Fatal(err)
	}
	var rows []spatialkeyword.Object
	var bounds geo.Rect
	err = st.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		rows = append(rows, spatialkeyword.Object{ID: uint64(o.ID), Point: o.Point, Text: o.Text})
		r := geo.PointRect(o.Point)
		if bounds.IsZero() {
			bounds = r
		} else {
			bounds = bounds.Union(r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows, stats, bounds
}

// fill adds every row to the engine (single or sharded) and asserts the
// assigned IDs match the rows' positions.
type adder interface {
	Add(point []float64, text string) (uint64, error)
}

func fill(t *testing.T, eng adder, rows []spatialkeyword.Object) {
	t.Helper()
	for i, o := range rows {
		id, err := eng.Add(o.Point, o.Text)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i) {
			t.Fatalf("add %d assigned id %d", i, id)
		}
	}
}

// queryPoints derives deterministic query locations near the data.
func queryPoints(rows []spatialkeyword.Object, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		o := rows[rng.Intn(len(rows))]
		out[i] = []float64{o.Point[0] + rng.NormFloat64()*25, o.Point[1] + rng.NormFloat64()*25}
	}
	return out
}

// keywordSets draws keyword sets from the moderately frequent band of the
// vocabulary so conjunctive queries have answers.
func keywordSets(stats *dataset.Stats, n, words int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	byFreq := stats.WordsByFreq()
	band := byFreq
	if len(band) > 40 {
		band = band[2:40]
	}
	out := make([][]string, n)
	for i := range out {
		seen := map[string]bool{}
		var kws []string
		for len(kws) < words {
			w := band[rng.Intn(len(band))]
			if !seen[w] {
				seen[w] = true
				kws = append(kws, w)
			}
		}
		out[i] = kws
	}
	return out
}

// sameResults asserts two distance-first result lists are identical modulo
// distance ties: equal length, pairwise-equal distances, and — for every
// run of equal distances that is not truncated by the k cutoff — equal ID
// sets with matching payloads. The final (possibly truncated) run only has
// to agree on distances; its membership may legally differ between a single
// engine and a sharded merge.
func sameResults(t *testing.T, label string, want, got []spatialkeyword.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Dist != got[i].Dist {
			t.Fatalf("%s: result %d dist %v, want %v", label, i, got[i].Dist, want[i].Dist)
		}
	}
	i := 0
	for i < len(want) {
		j := i
		for j < len(want) && want[j].Dist == want[i].Dist {
			j++
		}
		if j < len(want) { // complete run: membership must match exactly
			wantIDs := map[uint64]spatialkeyword.Result{}
			for _, r := range want[i:j] {
				wantIDs[r.Object.ID] = r
			}
			for _, r := range got[i:j] {
				w, ok := wantIDs[r.Object.ID]
				if !ok {
					t.Fatalf("%s: result id %d not in single-engine run at dist %v", label, r.Object.ID, r.Dist)
				}
				if w.Object.Text != r.Object.Text {
					t.Fatalf("%s: id %d text mismatch", label, r.Object.ID)
				}
			}
		}
		i = j
	}
}

// sameRanked is sameResults for general ranked output, keyed on Score.
func sameRanked(t *testing.T, label string, want, got []spatialkeyword.RankedResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Score != got[i].Score {
			t.Fatalf("%s: result %d score %v, want %v", label, i, got[i].Score, want[i].Score)
		}
	}
	i := 0
	for i < len(want) {
		j := i
		for j < len(want) && want[j].Score == want[i].Score {
			j++
		}
		if j < len(want) {
			wantIDs := map[uint64]bool{}
			for _, r := range want[i:j] {
				wantIDs[r.Object.ID] = true
			}
			for _, r := range got[i:j] {
				if !wantIDs[r.Object.ID] {
					t.Fatalf("%s: result id %d not in single-engine run at score %v", label, r.Object.ID, r.Score)
				}
			}
		}
		i = j
	}
}
