package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"spatialkeyword"
)

// walShardConfig enables per-shard write-ahead logging.
func walShardConfig() spatialkeyword.Config {
	return spatialkeyword.Config{SignatureBytes: 16, WAL: true}
}

// shardedLiveTexts collects every live (non-deleted) object's text across
// all available shards, sorted.
func shardedLiveTexts(t *testing.T, s *ShardedEngine) []string {
	t.Helper()
	var texts []string
	for _, sh := range s.shards {
		if sh.eng == nil {
			continue
		}
		if err := sh.eng.Scan(func(o spatialkeyword.Object) error {
			if !sh.eng.IsDeleted(o.ID) {
				texts = append(texts, o.Text)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(texts)
	return texts
}

// TestShardedWALRecoversUnsavedMutations: with per-shard WALs, mutations
// acknowledged after the last sharded Save survive a close/reopen — the
// shards replay their logs and the global→shard assignment is rebuilt from
// the replayed records' tags.
func TestShardedWALRecoversUnsavedMutations(t *testing.T) {
	checkGoroutines(t)
	dir := t.TempDir()
	s, err := NewDurable(walShardConfig(), dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var oracle []string
	for i := 0; i < 30; i++ {
		text := fmt.Sprintf("base %d poi", i)
		if _, err := s.Add([]float64{float64(i % 6), float64(i / 6)}, text); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, text)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	// Unsaved suffix: 12 adds and 2 deletes of previously saved objects.
	var gids []uint64
	for i := 0; i < 12; i++ {
		text := fmt.Sprintf("unsaved %d poi", i)
		gid, err := s.Add([]float64{float64(i % 4), 9 + float64(i/4)}, text)
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
		oracle = append(oracle, text)
	}
	for _, gid := range []uint64{3, 17} {
		obj, err := s.Get(gid)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(gid); err != nil {
			t.Fatal(err)
		}
		for i, text := range oracle {
			if text == obj.Text {
				oracle = append(oracle[:i], oracle[i+1:]...)
				break
			}
		}
	}
	sort.Strings(oracle)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wi := s.WALInfo()
	if !wi.Enabled {
		t.Fatal("WALInfo.Enabled = false on a WAL engine")
	}
	if wi.ReplayedRecords != 14 {
		t.Fatalf("replayed %d records, want 14 (12 adds + 2 deletes)", wi.ReplayedRecords)
	}
	if got := shardedLiveTexts(t, s); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("recovered %d live objects, want %d:\n got %v\nwant %v",
			len(got), len(oracle), got, oracle)
	}
	// The rebuilt assignment routes recovered global IDs correctly.
	for i, gid := range gids {
		obj, err := s.Get(gid)
		if err != nil {
			t.Fatalf("Get(%d) after replay: %v", gid, err)
		}
		if want := fmt.Sprintf("unsaved %d poi", i); obj.Text != want {
			t.Fatalf("Get(%d) = %q, want %q", gid, obj.Text, want)
		}
	}
	res, err := s.TopK(len(oracle)+4, []float64{3, 3}, "poi")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(oracle) {
		t.Fatalf("query found %d, want %d", len(res), len(oracle))
	}
}

// TestShardedWALReplayDeterministic: two opens of the same crashed directory
// reconstruct identical state — same live objects, same assignment, same
// query results.
func TestShardedWALReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurable(walShardConfig(), dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Commit the empty baseline; everything after lives only in the WALs.
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if _, err := s.Add([]float64{float64(i % 5), float64(i / 5)}, fmt.Sprintf("det %d poi", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	open := func() ([]string, []shardLoc, []spatialkeyword.Result) {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		texts := shardedLiveTexts(t, s)
		assign := append([]shardLoc(nil), s.assign...)
		res, err := s.TopK(30, []float64{2, 2}, "poi")
		if err != nil {
			t.Fatal(err)
		}
		return texts, assign, res
	}
	texts1, assign1, res1 := open()
	texts2, assign2, res2 := open()
	if !reflect.DeepEqual(texts1, texts2) {
		t.Fatalf("replay content diverged:\n%v\n%v", texts1, texts2)
	}
	if !reflect.DeepEqual(assign1, assign2) {
		t.Fatalf("replay assignment diverged:\n%v\n%v", assign1, assign2)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("replay query results diverged:\n%v\n%v", res1, res2)
	}
	if len(texts1) != 24 {
		t.Fatalf("recovered %d objects, want 24", len(texts1))
	}
}

// TestShardedWALKillDuringSaveLosesNothing kills the sharded save at every
// step, like the non-WAL crash test — but with per-shard WALs the oracle is
// strictly stronger: every acknowledged mutation survives, whether or not
// any save ever committed it.
func TestShardedWALKillDuringSaveLosesNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurable(walShardConfig(), dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var oracle []string
	add := func(text string, x, y float64) {
		t.Helper()
		if _, err := s.Add([]float64{x, y}, text); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, text)
	}
	for i := 0; i < 30; i++ {
		add(fmt.Sprintf("base %d poi", i), float64(i%6), float64(i/6))
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}

	// Crash steps: -1 = inside the manifest write, 0..2 = before shard i's
	// save, 3 = after all shard saves but before the manifest commit.
	steps := []int{-1, 0, 1, 2, 3}
	for iter := 0; iter < 25; iter++ {
		step := steps[iter%len(steps)]
		add(fmt.Sprintf("iter %d poi", iter), float64(iter%6), float64(iter%5))
		restore := armShardCrash(step)
		saveErr := s.Save()
		restore()
		if saveErr == nil {
			t.Fatalf("iter %d step %d: crashed save reported success", iter, step)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		s, err = Open(dir)
		if err != nil {
			t.Fatalf("iter %d step %d: reopen after crash: %v", iter, step, err)
		}
		want := append([]string(nil), oracle...)
		sort.Strings(want)
		if got := shardedLiveTexts(t, s); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d step %d: recovered %d objects, acknowledged %d",
				iter, step, len(got), len(want))
		}
		res, err := s.TopK(len(want)+4, []float64{3, 3}, "poi")
		if err != nil {
			t.Fatalf("iter %d: query after recovery: %v", iter, err)
		}
		if len(res) != len(want) {
			t.Fatalf("iter %d step %d: query found %d, acknowledged %d", iter, step, len(res), len(want))
		}
	}

	// A clean save then commits everything, and nothing replays.
	if err := s.Save(); err != nil {
		t.Fatalf("clean save after crash loop: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if wi := s.WALInfo(); wi.ReplayedRecords != 0 {
		t.Fatalf("clean save still replayed %d records", wi.ReplayedRecords)
	}
	want := append([]string(nil), oracle...)
	sort.Strings(want)
	if got := shardedLiveTexts(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("clean save content mismatch: %d vs %d", len(got), len(want))
	}
}

// TestShardedWALDegradedOpenServesHealthyShards: when one shard's storage
// is corrupt at open time, a WAL-enabled sharded engine opens degraded —
// the dead shard is out of rotation (sticky) while the healthy shards keep
// serving — instead of refusing to open at all.
func TestShardedWALDegradedOpenServesHealthyShards(t *testing.T) {
	checkGoroutines(t)
	dir := t.TempDir()
	cfg := walShardConfig()
	cfg.Checksums = true
	s, err := NewDurable(cfg, dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Add([]float64{float64(i % 6), float64(i / 6)}, fmt.Sprintf("deg %d poi", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	victims := len(s.shards[1].globals)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot shard 1's object file and its snapshots: every data block (the
	// raw device header in the first 4 KiB is left intact so the files
	// still open as file disks — the checksummed reads are what fail).
	matches, err := filepath.Glob(filepath.Join(shardDir(dir, 1), "objects*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no object files to corrupt: %v (%d)", err, len(matches))
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 4096; i < len(data); i++ {
			data[i] ^= 0xFF
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s, err = Open(dir)
	if err != nil {
		t.Fatalf("degraded open refused: %v", err)
	}
	defer s.Close()
	if s.shards[1].eng != nil {
		t.Fatal("corrupt shard opened an engine")
	}
	if h := s.Health(); h[1].Healthy || !h[0].Healthy || !h[2].Healthy {
		t.Fatalf("health after degraded open: %+v", h)
	}
	res, st, err := s.TopKWithStats(40, []float64{3, 3}, "poi")
	if err != nil {
		t.Fatalf("query on degraded engine: %v", err)
	}
	if !st.Degraded {
		t.Fatal("degraded open did not mark queries degraded")
	}
	if len(res) != 30-victims {
		t.Fatalf("degraded query found %d, want %d (30 minus %d on the dead shard)",
			len(res), 30-victims, victims)
	}
	// The dead shard stays down: ResetHealth cannot revive a shard that
	// never opened, and Save refuses to snapshot around it.
	if n := s.ResetHealth(); n != 0 {
		t.Fatalf("ResetHealth revived %d shards, want 0", n)
	}
	if err := s.Save(); !errors.Is(err, ErrUnhealthyShard) {
		t.Fatalf("Save on degraded-open engine: got %v, want ErrUnhealthyShard", err)
	}
}
