//go:build !race

// Allocation-regression gates. The race detector instruments allocations and
// inflates AllocsPerRun counts, so this file is excluded from -race runs; the
// plain `go test ./...` tier-1 pass enforces the budgets.

package sigfile

import "testing"

func TestMatchesAllocFree(t *testing.T) {
	cfg := Config{LengthBytes: 189, BitsPerWord: 4}
	s := cfg.DocSignature([]string{"internet", "pool", "spa", "parking"})
	q := cfg.DocSignature([]string{"pool"})
	var sink bool
	if n := testing.AllocsPerRun(1000, func() {
		sink = Matches(s, q)
		sink = MatchesTolerant(s, q) || sink
	}); n != 0 {
		t.Fatalf("Matches/MatchesTolerant allocate %.1f/op, want 0", n)
	}
	_ = sink
}

func TestSig64MatchAllocFree(t *testing.T) {
	cfg := Config{LengthBytes: 189, BitsPerWord: 4}
	s := cfg.DocSignature([]string{"internet", "pool", "spa", "parking"})
	v := MakeSig64(cfg.DocSignature([]string{"pool", "spa"}))
	raw := []byte(s)
	var sink bool
	if n := testing.AllocsPerRun(1000, func() {
		sink = v.MatchesTolerant(raw)
	}); n != 0 {
		t.Fatalf("Sig64.MatchesTolerant allocates %.1f/op, want 0", n)
	}
	_ = sink
}

func TestSuperimposeAllocFree(t *testing.T) {
	cfg := Config{LengthBytes: 64, BitsPerWord: 4}
	dst := cfg.DocSignature([]string{"alpha"})
	src := cfg.DocSignature([]string{"beta"})
	if n := testing.AllocsPerRun(1000, func() {
		Superimpose(dst, src)
	}); n != 0 {
		t.Fatalf("Superimpose allocates %.1f/op, want 0", n)
	}
}
