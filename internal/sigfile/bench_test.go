package sigfile

import (
	"fmt"
	"testing"
)

func benchWords(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("word%04d", i)
	}
	return out
}

func BenchmarkDocSignature350Words(b *testing.B) {
	// A Hotels-sized document at the paper's 189-byte signature.
	cfg := Config{LengthBytes: 189, BitsPerWord: 4}
	words := benchWords(350)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.DocSignature(words)
	}
}

func BenchmarkDocSignature14Words(b *testing.B) {
	// A Restaurants-sized document at the paper's 8-byte signature.
	cfg := Config{LengthBytes: 8, BitsPerWord: 4}
	words := benchWords(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.DocSignature(words)
	}
}

func BenchmarkMatches(b *testing.B) {
	cfg := Config{LengthBytes: 189, BitsPerWord: 4}
	doc := cfg.DocSignature(benchWords(350))
	q := cfg.DocSignature([]string{"word0001", "word0002"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matches(doc, q)
	}
}

func BenchmarkSuperimpose(b *testing.B) {
	cfg := Config{LengthBytes: 189, BitsPerWord: 4}
	a := cfg.DocSignature(benchWords(100))
	c := cfg.DocSignature(benchWords(100)[50:])
	dst := a.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Superimpose(dst, c)
	}
}
