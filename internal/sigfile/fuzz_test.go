package sigfile

import (
	"strings"
	"testing"
)

// FuzzNoFalseNegatives fuzzes the fundamental signature property: a
// document signature always matches the signature of any word the document
// contains, at any configuration.
func FuzzNoFalseNegatives(f *testing.F) {
	f.Add("internet pool spa", uint8(8), uint8(4), uint8(0))
	f.Add("a b c d e f g", uint8(1), uint8(1), uint8(3))
	f.Add("", uint8(16), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, doc string, lenBytes, k, pick uint8) {
		cfg := Config{
			LengthBytes: int(lenBytes%64) + 1,
			BitsPerWord: int(k%16) + 1,
		}
		words := strings.Fields(doc)
		sig := cfg.DocSignature(words)
		if len(words) == 0 {
			if !sig.IsZero() {
				t.Fatal("empty document produced non-zero signature")
			}
			return
		}
		w := words[int(pick)%len(words)]
		if !Matches(sig, cfg.WordSignature(w)) {
			t.Fatalf("false negative: %q in %q (cfg %+v)", w, doc, cfg)
		}
		// Superimposing anything preserves the match.
		bigger := Union(sig, cfg.DocSignature([]string{"extra", "words"}))
		if !Matches(bigger, cfg.WordSignature(w)) {
			t.Fatal("superimposition broke a match")
		}
	})
}
