// Package sigfile implements superimposed-coding signature files, the text
// access method of Faloutsos & Christodoulakis [FC84] that the IR²-Tree
// grafts onto the R-Tree.
//
// A signature is an m-bit array. Each word of a document sets k pseudo-random
// bit positions (k = BitsPerWord); the document's signature is the bitwise OR
// ("superimposition") of its words' signatures. A document *may* contain a
// query word only if the query word's bits are all set in the document
// signature; a clear bit proves absence, so signatures never produce false
// negatives, only false positives.
//
// In the IR²-Tree the signature of an interior node is the superimposition of
// its children's signatures, so a node signature stands in for every document
// in its subtree; a failed match prunes the whole subtree during search.
//
// The package also provides the optimal-length design rule [MC94] used by the
// Multi-level IR²-Tree: for a signature that will absorb D distinct words at
// k bits each, the false-positive probability is minimized when about half
// the bits are set, which happens at m = k·D / ln 2 bits.
package sigfile

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
)

// Signature is an m-bit superimposed code stored as bytes (bit i lives in
// byte i/8, mask 1<<(i%8)). The byte representation serializes directly into
// disk blocks, and the paper reports signature lengths in bytes (189 B for
// Hotels, 8 B for Restaurants).
type Signature []byte

// Config fixes the two design parameters of a signature scheme. Signatures
// from different Configs are not comparable.
type Config struct {
	// LengthBytes is the signature length in bytes (m = 8·LengthBytes bits).
	LengthBytes int
	// BitsPerWord is k, the number of bit positions each word sets.
	BitsPerWord int
}

// DefaultBitsPerWord is the k used throughout the experiments when not
// stated otherwise.
const DefaultBitsPerWord = 4

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.LengthBytes <= 0 {
		return fmt.Errorf("sigfile: non-positive signature length %d", c.LengthBytes)
	}
	if c.BitsPerWord <= 0 {
		return fmt.Errorf("sigfile: non-positive bits per word %d", c.BitsPerWord)
	}
	return nil
}

// Bits returns the signature length in bits.
func (c Config) Bits() int { return c.LengthBytes * 8 }

// New returns an all-zero signature of the configured length.
func (c Config) New() Signature { return make(Signature, c.LengthBytes) }

// hashPair derives two independent 64-bit hash values from a word, used for
// double hashing: bit_i = (h1 + i·h2) mod m.
func hashPair(word string) (h1, h2 uint64) {
	f := fnv.New64a()
	f.Write([]byte(word)) //nolint:errcheck // fnv never fails
	h1 = f.Sum64()
	h2 = h1>>33 | 1 // odd, so it cycles through all residues of any m
	return h1, h2
}

// SetWord sets word's k bit positions in s. The word should already be
// normalized (see textutil.Normalize); signatures are byte-exact on the
// input string.
func (c Config) SetWord(s Signature, word string) {
	m := uint64(c.Bits())
	h1, h2 := hashPair(word)
	for i := 0; i < c.BitsPerWord; i++ {
		bit := (h1 + uint64(i)*h2) % m
		s[bit/8] |= 1 << (bit % 8)
	}
}

// WordSignature returns the signature of a single word.
func (c Config) WordSignature(word string) Signature {
	s := c.New()
	c.SetWord(s, word)
	return s
}

// DocSignature returns the superimposition of the given words' signatures —
// the signature stored with an object in an IR²-Tree leaf.
func (c Config) DocSignature(words []string) Signature {
	s := c.New()
	for _, w := range words {
		c.SetWord(s, w)
	}
	return s
}

// Superimpose ORs src into dst in place. Both must have equal length; it
// panics otherwise, since mixing signature lengths is a logic error.
func Superimpose(dst, src Signature) {
	if len(dst) != len(src) {
		//skvet:ignore nopanic documented invariant: mixed signature lengths are a caller logic error
		panic(fmt.Sprintf("sigfile: superimpose length mismatch %d vs %d", len(dst), len(src)))
	}
	superimposeWords(dst, src)
}

// ErrLengthMismatch is returned by the checked signature operations when two
// signatures of different lengths meet — the symptom of a corrupt or
// misframed on-disk aux payload.
var ErrLengthMismatch = errors.New("sigfile: signature length mismatch")

// SuperimposeChecked ORs src into dst like Superimpose but returns
// ErrLengthMismatch instead of panicking. Use it on signatures decoded from
// disk, where a length mismatch means corruption rather than a programming
// error.
func SuperimposeChecked(dst, src Signature) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(dst), len(src))
	}
	superimposeWords(dst, src)
	return nil
}

// MatchesTolerant is Matches for signatures of possibly-corrupt provenance:
// on length mismatch it reports true (no pruning) instead of panicking.
// Signatures admit false positives but never false negatives, so when a
// decoded signature cannot be trusted the only sound answer is "may match" —
// the search descends and the exact text check downstream decides.
func MatchesTolerant(s, q Signature) bool {
	if len(s) != len(q) {
		return true
	}
	return matchesWords(s, q)
}

// Union returns a new signature that superimposes a and b.
func Union(a, b Signature) Signature {
	out := make(Signature, len(a))
	copy(out, a)
	Superimpose(out, b)
	return out
}

// Matches reports whether a document (or subtree) with signature s may
// contain everything described by query signature q — i.e. every set bit of
// q is set in s. This is the "s matches w" test of IR2NearestNeighbor
// (paper Figure 8, lines 5 and 9). It panics on length mismatch.
func Matches(s, q Signature) bool {
	if len(s) != len(q) {
		//skvet:ignore nopanic documented invariant: mixed signature lengths are a caller logic error
		panic(fmt.Sprintf("sigfile: match length mismatch %d vs %d", len(s), len(q)))
	}
	return matchesWords(s, q)
}

// Equal reports whether two signatures are bit-identical.
func (s Signature) Equal(t Signature) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Signature) Clone() Signature {
	t := make(Signature, len(s))
	copy(t, s)
	return t
}

// IsZero reports whether no bit is set.
func (s Signature) IsZero() bool {
	for _, b := range s {
		if b != 0 {
			return false
		}
	}
	return true
}

// Weight returns the number of set bits.
func (s Signature) Weight() int {
	var w int
	for _, b := range s {
		w += bits.OnesCount8(b)
	}
	return w
}

// Density returns the fraction of set bits in [0, 1].
func (s Signature) Density() float64 {
	if len(s) == 0 {
		return 0
	}
	return float64(s.Weight()) / float64(len(s)*8)
}

// String renders the signature as hex for debugging.
func (s Signature) String() string { return fmt.Sprintf("%x", []byte(s)) }

// FalsePositiveProb estimates the probability that a signature with the
// given bit density spuriously matches a query that sets qbits distinct bit
// positions: each query bit is independently found set with probability
// density.
func FalsePositiveProb(density float64, qbits int) float64 {
	return math.Pow(density, float64(qbits))
}

// ExpectedDensity estimates the bit density of a signature of mbits bits
// after superimposing words distinct words at k bits each:
// 1 - (1 - 1/m)^(k·words).
func ExpectedDensity(mbits, k, words int) float64 {
	if mbits <= 0 {
		return 1
	}
	return 1 - math.Pow(1-1/float64(mbits), float64(k*words))
}

// OptimalBits returns the signature length in bits that minimizes the
// false-positive rate for a signature absorbing distinctWords words at k
// bits per word, per the classic design rule [MC94]: m = k·D / ln 2,
// which makes the expected density ≈ 1/2. The result is at least 8 bits.
func OptimalBits(distinctWords, k int) int {
	m := int(math.Ceil(float64(k*distinctWords) / math.Ln2))
	if m < 8 {
		m = 8
	}
	return m
}

// OptimalLengthBytes returns OptimalBits rounded up to whole bytes.
func OptimalLengthBytes(distinctWords, k int) int {
	return (OptimalBits(distinctWords, k) + 7) / 8
}

// LevelConfigs computes per-level signature configurations for a Multi-level
// IR²-Tree of the given height. Level 0 is the leaf level, which uses the
// caller-chosen leaf configuration (the experiments sweep this length).
// Level i (counting up from the leaves) covers roughly fanout^i times more
// objects, so its signatures absorb more distinct words; each level gets the
// optimal length for its expected distinct-word count, capped at the corpus
// vocabulary size (a subtree can never contain more distinct words than the
// corpus has).
//
// avgWordsPerObject is the mean number of distinct words per object document
// and vocabSize the corpus vocabulary size (both from Table 1 for the
// paper's datasets).
func LevelConfigs(leaf Config, height, fanout int, avgWordsPerObject float64, vocabSize int) []Config {
	if height < 1 {
		height = 1
	}
	if fanout < 2 {
		fanout = 2
	}
	cfgs := make([]Config, height)
	cfgs[0] = leaf
	words := avgWordsPerObject
	for lvl := 1; lvl < height; lvl++ {
		// Distinct words in a subtree grow sublinearly with the object
		// count; modeling them as capped linear growth keeps higher levels
		// near the vocabulary size, which is the regime that matters.
		words *= float64(fanout)
		d := int(math.Ceil(words))
		if vocabSize > 0 && d > vocabSize {
			d = vocabSize
		}
		cfgs[lvl] = Config{
			LengthBytes: OptimalLengthBytes(d, leaf.BitsPerWord),
			BitsPerWord: leaf.BitsPerWord,
		}
	}
	return cfgs
}
