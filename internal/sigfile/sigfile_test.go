package sigfile

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var testCfg = Config{LengthBytes: 16, BitsPerWord: 4}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{LengthBytes: 8, BitsPerWord: 2}, true},
		{"zero length", Config{LengthBytes: 0, BitsPerWord: 2}, false},
		{"negative length", Config{LengthBytes: -1, BitsPerWord: 2}, false},
		{"zero bits", Config{LengthBytes: 8, BitsPerWord: 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestWordSignatureDeterministicAndWeight(t *testing.T) {
	a := testCfg.WordSignature("internet")
	b := testCfg.WordSignature("internet")
	if !a.Equal(b) {
		t.Error("same word produced different signatures")
	}
	if w := a.Weight(); w == 0 || w > testCfg.BitsPerWord {
		t.Errorf("word signature weight = %d, want 1..%d", w, testCfg.BitsPerWord)
	}
	if a.Equal(testCfg.WordSignature("pool")) {
		t.Error("distinct words produced identical signatures (16-byte sig, extremely unlikely)")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	// The defining property of superimposed codes: if the document contains
	// the query words, the match test must succeed.
	words := []string{"internet", "pool", "spa", "sauna", "tennis", "golf", "concierge"}
	doc := testCfg.DocSignature(words)
	for _, w := range words {
		if !Matches(doc, testCfg.WordSignature(w)) {
			t.Errorf("false negative for contained word %q", w)
		}
	}
	q := testCfg.DocSignature([]string{"internet", "pool"})
	if !Matches(doc, q) {
		t.Error("false negative for contained word pair")
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	cfg := Config{LengthBytes: 8, BitsPerWord: 3}
	f := func(words []string, pick uint8) bool {
		if len(words) == 0 {
			return true
		}
		doc := cfg.DocSignature(words)
		w := words[int(pick)%len(words)]
		return Matches(doc, cfg.WordSignature(w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMatchesRejectsAbsentBits(t *testing.T) {
	doc := testCfg.DocSignature([]string{"spa"})
	// A query superimposing many words will almost surely set a bit that a
	// single-word signature did not.
	q := testCfg.DocSignature([]string{"internet", "pool", "golf", "sauna"})
	if Matches(doc, q) {
		t.Error("single-word doc matched 4-word query (would be a 1-in-many false positive)")
	}
}

func TestMatchesEmptyQuery(t *testing.T) {
	doc := testCfg.DocSignature([]string{"spa"})
	if !Matches(doc, testCfg.New()) {
		t.Error("empty query signature must match everything")
	}
}

func TestMatchesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Matches(make(Signature, 4), make(Signature, 8))
}

func TestSuperimposeMonotone(t *testing.T) {
	a := testCfg.DocSignature([]string{"internet"})
	b := testCfg.DocSignature([]string{"pool", "spa"})
	u := Union(a, b)
	if !Matches(u, a) || !Matches(u, b) {
		t.Error("union does not cover its parts")
	}
	if u.Weight() < a.Weight() || u.Weight() < b.Weight() {
		t.Error("union weight below part weight")
	}
	// Superimpose must not mutate src.
	before := b.Clone()
	Superimpose(a, b)
	if !b.Equal(before) {
		t.Error("Superimpose mutated src")
	}
	if !a.Equal(u) {
		t.Error("Superimpose != Union")
	}
}

func TestSuperimposeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Superimpose(make(Signature, 2), make(Signature, 3))
}

func TestQuickSuperimpositionPreservesMatches(t *testing.T) {
	// If s matches q, then s OR anything still matches q — the property that
	// makes parent-node pruning sound in the IR²-Tree.
	cfg := Config{LengthBytes: 8, BitsPerWord: 3}
	f := func(docWords, otherWords, queryWords []string) bool {
		doc := cfg.DocSignature(docWords)
		q := cfg.DocSignature(queryWords)
		if !Matches(doc, q) {
			return true // antecedent false
		}
		parent := Union(doc, cfg.DocSignature(otherWords))
		return Matches(parent, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSignatureBasics(t *testing.T) {
	s := testCfg.New()
	if !s.IsZero() || s.Weight() != 0 || s.Density() != 0 {
		t.Error("fresh signature not zero")
	}
	testCfg.SetWord(s, "x")
	if s.IsZero() {
		t.Error("SetWord left signature zero")
	}
	c := s.Clone()
	c[0] ^= 0xFF
	if s.Equal(c) {
		t.Error("Clone aliases storage")
	}
	if s.Equal(make(Signature, 1)) {
		t.Error("Equal across lengths")
	}
	if (Signature{}).Density() != 0 {
		t.Error("empty signature density")
	}
	if fmt.Sprintf("%v", Signature{0xab, 0x01}) != "ab01" {
		t.Errorf("String = %v", Signature{0xab, 0x01})
	}
}

func TestDensityAndFalsePositiveModel(t *testing.T) {
	if got := FalsePositiveProb(0.5, 4); math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("FalsePositiveProb = %g", got)
	}
	// ExpectedDensity grows with words and shrinks with length.
	d1 := ExpectedDensity(64, 4, 5)
	d2 := ExpectedDensity(64, 4, 20)
	d3 := ExpectedDensity(512, 4, 20)
	if !(d1 < d2) || !(d3 < d2) {
		t.Errorf("density ordering wrong: %g %g %g", d1, d2, d3)
	}
	if ExpectedDensity(0, 4, 5) != 1 {
		t.Error("degenerate length should saturate")
	}
}

func TestExpectedDensityMatchesSimulation(t *testing.T) {
	cfg := Config{LengthBytes: 32, BitsPerWord: 4} // 256 bits
	const words = 30
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		ws := make([]string, words)
		for i := range ws {
			ws[i] = fmt.Sprintf("w%d-%d", trial, rng.Int63())
		}
		sum += cfg.DocSignature(ws).Density()
	}
	got := sum / trials
	want := ExpectedDensity(cfg.Bits(), cfg.BitsPerWord, words)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("simulated density %g vs model %g", got, want)
	}
}

func TestOptimalBits(t *testing.T) {
	// m = k·D/ln2: 4 bits/word, 100 words → 577.08 → 578 bits.
	if got := OptimalBits(100, 4); got != 578 {
		t.Errorf("OptimalBits(100,4) = %d, want 578", got)
	}
	if got := OptimalBits(0, 4); got != 8 {
		t.Errorf("OptimalBits floor = %d, want 8", got)
	}
	if got := OptimalLengthBytes(100, 4); got != 73 {
		t.Errorf("OptimalLengthBytes(100,4) = %d, want 73", got)
	}
	// Optimal design should land near 50% density.
	d := ExpectedDensity(OptimalBits(200, 4), 4, 200)
	if d < 0.45 || d > 0.55 {
		t.Errorf("optimal-length density = %g, want ≈0.5", d)
	}
}

func TestLevelConfigs(t *testing.T) {
	leaf := Config{LengthBytes: 8, BitsPerWord: 4}
	cfgs := LevelConfigs(leaf, 4, 100, 14, 73855)
	if len(cfgs) != 4 {
		t.Fatalf("got %d levels", len(cfgs))
	}
	if cfgs[0] != leaf {
		t.Error("leaf level config replaced")
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].LengthBytes < cfgs[i-1].LengthBytes {
			t.Errorf("level %d shorter than level %d (%d < %d)",
				i, i-1, cfgs[i].LengthBytes, cfgs[i-1].LengthBytes)
		}
		if cfgs[i].BitsPerWord != leaf.BitsPerWord {
			t.Errorf("level %d changed k", i)
		}
	}
	// Top level should be capped by vocabulary size:
	// optimal for 73855 words at k=4.
	capLen := OptimalLengthBytes(73855, 4)
	if cfgs[3].LengthBytes != capLen {
		t.Errorf("top level = %d bytes, want vocab-capped %d", cfgs[3].LengthBytes, capLen)
	}
}

func TestLevelConfigsDegenerate(t *testing.T) {
	leaf := Config{LengthBytes: 8, BitsPerWord: 2}
	cfgs := LevelConfigs(leaf, 0, 0, 10, 100)
	if len(cfgs) != 1 || cfgs[0] != leaf {
		t.Errorf("degenerate LevelConfigs = %v", cfgs)
	}
}

func TestFalsePositiveRateEmpirical(t *testing.T) {
	// With an optimally sized signature the measured false-positive rate for
	// absent words should be small; with a much-too-short signature it
	// should be large. This validates the whole design chain end to end.
	const docWords = 50
	rng := rand.New(rand.NewSource(99))
	makeWords := func(n int, tag string) []string {
		ws := make([]string, n)
		for i := range ws {
			ws[i] = fmt.Sprintf("%s-%d", tag, rng.Int63())
		}
		return ws
	}
	measure := func(cfg Config) float64 {
		var fp, total int
		for trial := 0; trial < 30; trial++ {
			doc := cfg.DocSignature(makeWords(docWords, "doc"))
			for _, probe := range makeWords(100, "absent") {
				total++
				if Matches(doc, cfg.WordSignature(probe)) {
					fp++
				}
			}
		}
		return float64(fp) / float64(total)
	}
	good := Config{LengthBytes: OptimalLengthBytes(docWords, 4), BitsPerWord: 4}
	bad := Config{LengthBytes: 4, BitsPerWord: 4}
	gRate, bRate := measure(good), measure(bad)
	if gRate > 0.15 {
		t.Errorf("optimal config false-positive rate %g too high", gRate)
	}
	if bRate < gRate {
		t.Errorf("short signature (%g) outperformed optimal (%g)", bRate, gRate)
	}
	if bRate < 0.5 {
		t.Errorf("4-byte signature over 50 words should be nearly saturated, fp=%g", bRate)
	}
}
