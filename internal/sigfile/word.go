// Word-at-a-time signature kernels. The byte representation of Signature is
// the on-disk format and cannot change, but the hot operations — the AND-match
// of IR2NearestNeighbor and the superimposition that builds node signatures —
// need not walk it a byte at a time. Go guarantees binary.LittleEndian.Uint64
// compiles to a single unaligned load on the platforms we care about, so the
// kernels below process eight bytes per step and fall back to byte-wise code
// only on the tail (len mod 8 bytes).
//
// The byte-wise originals survive as unexported reference implementations;
// the differential tests and FuzzSig64Equivalence hold the two forms equal on
// every length class mod 8.

package sigfile

import "encoding/binary"

// matchesWords reports whether every set bit of q is set in s, assuming
// len(s) == len(q). Eight bytes per step, byte-wise tail.
//
//skvet:hotpath
func matchesWords(s, q []byte) bool {
	n := len(q)
	i := 0
	for ; i+8 <= n; i += 8 {
		sw := binary.LittleEndian.Uint64(s[i:])
		qw := binary.LittleEndian.Uint64(q[i:])
		if sw&qw != qw {
			return false
		}
	}
	for ; i < n; i++ {
		if s[i]&q[i] != q[i] {
			return false
		}
	}
	return true
}

// superimposeWords ORs src into dst in place, assuming equal lengths.
//
//skvet:hotpath
func superimposeWords(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		w := binary.LittleEndian.Uint64(dst[i:]) | binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], w)
	}
	for ; i < n; i++ {
		dst[i] |= src[i]
	}
}

// matchesBytewise is the original byte-at-a-time match, kept as the oracle
// for the differential and fuzz tests.
func matchesBytewise(s, q []byte) bool {
	for i := range q {
		if s[i]&q[i] != q[i] {
			return false
		}
	}
	return true
}

// superimposeBytewise is the original byte-at-a-time superimposition oracle.
func superimposeBytewise(dst, src []byte) {
	for i := range src {
		dst[i] |= src[i]
	}
}

// Sig64 is a query signature pre-decoded into uint64 words: the full 8-byte
// little-endian words plus a zero-padded tail word for the last len mod 8
// bytes. Building one costs a single allocation at query setup; matching it
// against a raw aux payload straight off a disk block costs none. This is
// the representation the distance-first traversal holds for the lifetime of
// a query — the byte form is decoded once instead of re-walked per node.
type Sig64 struct {
	n    int      // length of the original signature in bytes
	full []uint64 // complete 8-byte words, little-endian
	tail uint64   // last n%8 bytes, little-endian, zero-padded high
}

// MakeSig64 decodes q into its word form. The result does not alias q.
func MakeSig64(q Signature) Sig64 {
	n := len(q)
	v := Sig64{n: n}
	nf := n / 8
	if nf > 0 {
		v.full = make([]uint64, nf)
		for i := range v.full {
			v.full[i] = binary.LittleEndian.Uint64(q[i*8:])
		}
	}
	for i := nf * 8; i < n; i++ {
		v.tail |= uint64(q[i]) << (8 * (i - nf*8))
	}
	return v
}

// Len returns the length of the original signature in bytes.
func (v Sig64) Len() int { return v.n }

// IsZero reports whether no bit is set in the query.
func (v Sig64) IsZero() bool {
	for _, w := range v.full {
		if w != 0 {
			return false
		}
	}
	return v.tail == 0
}

// Bytes reconstructs the byte-form signature. For tests and diagnostics;
// allocates.
func (v Sig64) Bytes() Signature {
	s := make(Signature, v.n)
	for i, w := range v.full {
		binary.LittleEndian.PutUint64(s[i*8:], w)
	}
	for i := len(v.full) * 8; i < v.n; i++ {
		s[i] = byte(v.tail >> (8 * (i - len(v.full)*8)))
	}
	return s
}

// MatchesTolerant reports whether a document or subtree whose signature is
// the raw byte slice s may contain everything the query describes. Like the
// byte-form MatchesTolerant, a length mismatch means the decoded signature
// cannot be trusted, and the only sound answer is "may match". s may alias
// a disk-block image; it is never retained. Zero allocations.
//
//skvet:hotpath
func (v Sig64) MatchesTolerant(s []byte) bool {
	if len(s) != v.n {
		return true
	}
	for i, qw := range v.full {
		sw := binary.LittleEndian.Uint64(s[i*8:])
		if sw&qw != qw {
			return false
		}
	}
	if v.tail != 0 {
		var sw uint64
		for i := len(v.full) * 8; i < v.n; i++ {
			sw |= uint64(s[i]) << (8 * (i - len(v.full)*8))
		}
		if sw&v.tail != v.tail {
			return false
		}
	}
	return true
}
