package sigfile

import (
	"bytes"
	"math/rand"
	"testing"
)

// randSig fills a signature of length n with deterministic pseudo-random
// bytes, optionally AND-masking it so matches become likely.
func randSig(rng *rand.Rand, n int, mask byte) Signature {
	s := make(Signature, n)
	for i := range s {
		s[i] = byte(rng.Intn(256)) & mask
	}
	return s
}

// TestWordKernelsAgreeWithBytewise holds the word-at-a-time kernels equal to
// the byte-wise reference implementations on randomized signatures of every
// length class mod 8 (lengths 0..40 cover each residue five times, plus the
// paper's 8 B and 189 B lengths).
func TestWordKernelsAgreeWithBytewise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lengths := make([]int, 0, 48)
	for n := 0; n <= 40; n++ {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, 64, 189)
	for _, n := range lengths {
		for trial := 0; trial < 64; trial++ {
			s := randSig(rng, n, 0xff)
			var q Signature
			switch trial % 3 {
			case 0: // independent random query: matches unlikely
				q = randSig(rng, n, 0xff)
			case 1: // subset of s: must match
				q = s.Clone()
				for i := range q {
					q[i] &= byte(rng.Intn(256))
				}
			default: // near-subset: flip one bit sometimes
				q = s.Clone()
				if n > 0 && rng.Intn(2) == 0 {
					q[rng.Intn(n)] ^= 1 << uint(rng.Intn(8))
				}
			}

			want := matchesBytewise(s, q)
			if got := matchesWords(s, q); got != want {
				t.Fatalf("matchesWords(len %d) = %v, bytewise = %v\ns=%x\nq=%x", n, got, want, s, q)
			}
			if got := Matches(s, q); got != want {
				t.Fatalf("Matches(len %d) = %v, bytewise = %v", n, got, want)
			}
			if got := MatchesTolerant(s, q); got != want {
				t.Fatalf("MatchesTolerant(len %d) = %v, bytewise = %v", n, got, want)
			}

			v := MakeSig64(q)
			if got := v.MatchesTolerant(s); got != want {
				t.Fatalf("Sig64.MatchesTolerant(len %d) = %v, bytewise = %v\ns=%x\nq=%x", n, got, want, s, q)
			}
			if !bytes.Equal(v.Bytes(), q) {
				t.Fatalf("Sig64 round-trip(len %d): got %x want %x", n, v.Bytes(), q)
			}
			if v.Len() != n {
				t.Fatalf("Sig64.Len = %d, want %d", v.Len(), n)
			}
			if v.IsZero() != q.IsZero() {
				t.Fatalf("Sig64.IsZero(len %d) = %v, Signature.IsZero = %v", n, v.IsZero(), q.IsZero())
			}

			// Superimpose: word kernel vs byte-wise oracle.
			d1, d2 := s.Clone(), s.Clone()
			superimposeWords(d1, q)
			superimposeBytewise(d2, q)
			if !bytes.Equal(d1, d2) {
				t.Fatalf("superimposeWords(len %d): got %x want %x", n, d1, d2)
			}
			if err := SuperimposeChecked(d1, q); err != nil {
				t.Fatalf("SuperimposeChecked(len %d): %v", n, err)
			}
		}
	}
}

// TestSig64TolerantOnMismatch: like the byte form, a length mismatch must
// answer "may match".
func TestSig64TolerantOnMismatch(t *testing.T) {
	v := MakeSig64(Signature{0xff, 0x01})
	if !v.MatchesTolerant([]byte{0x00}) {
		t.Fatal("Sig64.MatchesTolerant must report true on length mismatch")
	}
	if !MatchesTolerant(Signature{0x00}, Signature{0xff, 0x01}) {
		t.Fatal("MatchesTolerant must report true on length mismatch")
	}
}

// FuzzSig64Equivalence fuzzes the word-at-a-time kernels against the
// byte-wise oracles on arbitrary signature pairs, truncating both inputs to
// a shared length so every length class mod 8 is exercised.
func FuzzSig64Equivalence(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xff}, []byte{0x01})
	f.Add([]byte("eightbyt"), []byte("eightbyt"))
	f.Add([]byte("seventeen bytes.."), []byte("seventeen bytes!!"))
	f.Add(bytes.Repeat([]byte{0xaa}, 189), bytes.Repeat([]byte{0x22}, 189))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		s, q := Signature(a[:n]), Signature(b[:n])

		want := matchesBytewise(s, q)
		if got := matchesWords(s, q); got != want {
			t.Fatalf("matchesWords = %v, bytewise = %v on s=%x q=%x", got, want, s, q)
		}
		v := MakeSig64(q)
		if got := v.MatchesTolerant(s); got != want {
			t.Fatalf("Sig64.MatchesTolerant = %v, bytewise = %v on s=%x q=%x", got, want, s, q)
		}
		if !bytes.Equal(v.Bytes(), q) {
			t.Fatalf("Sig64 round-trip: got %x want %x", v.Bytes(), q)
		}
		// Full-length b as the document side too: mismatched lengths must
		// be tolerated, not crash.
		if len(b) != v.Len() && !v.MatchesTolerant(b) {
			t.Fatal("Sig64.MatchesTolerant must be true on length mismatch")
		}

		d1 := append(Signature(nil), s...)
		d2 := append(Signature(nil), s...)
		superimposeWords(d1, q)
		superimposeBytewise(d2, q)
		if !bytes.Equal(d1, d2) {
			t.Fatalf("superimposeWords: got %x want %x", d1, d2)
		}
		// A signature always matches anything it was superimposed into.
		if !matchesWords(d1, q) {
			t.Fatal("superimposed signature must match its source")
		}
	})
}
