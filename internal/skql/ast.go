// Package skql implements the declarative query front-end: a small
// text query language (and an equivalent structured-JSON form) parsed
// into a typed AST, lowered through a logical plan with rewrite rules
// (conjunct extraction, DNF split), costed by the one shared cost
// model, and executed against any engine facade — single, sharded, or
// replicated follower — with EXPLAIN / EXPLAIN ANALYZE rendering.
//
// The language covers the query classes the paper's engines already
// serve (ICDE 2008 §4–§5): distance-first top-k, ranked (MIR²) top-k,
// area/boolean range, and counting, each combined with an arbitrary
// boolean keyword tree:
//
//	[EXPLAIN [ANALYZE]] SELECT (TOP k | RANKED k | ALL | COUNT)
//	    [NEAR (x, y)]
//	    [MATCH <bool-expr>]
//	    [WHERE score > 0]
//	    [WITHIN rect(lox, loy, hix, hiy)]
//	    [USING ir2|iio|rtree|auto]
//
// where <bool-expr> is quoted or bare keywords combined with AND, OR,
// NOT and parentheses (OR binds loosest, then AND, then NOT).
package skql

import (
	"strconv"
	"strings"
)

// Proj is the projection kind of a query.
type Proj int

const (
	// ProjTop is distance-first top-k (SELECT TOP k).
	ProjTop Proj = iota
	// ProjRanked is IR-scored top-k (SELECT RANKED k).
	ProjRanked
	// ProjAll returns every match inside the WITHIN rect (SELECT ALL).
	ProjAll
	// ProjCount counts matches inside the WITHIN rect (SELECT COUNT).
	ProjCount
)

// String returns the keyword used in query text for the projection.
func (p Proj) String() string {
	switch p {
	case ProjTop:
		return "TOP"
	case ProjRanked:
		return "RANKED"
	case ProjAll:
		return "ALL"
	case ProjCount:
		return "COUNT"
	}
	return "?"
}

// Path names a physical access path. PathAuto lets the planner choose.
type Path int

const (
	// PathAuto defers the choice to the cost-based planner.
	PathAuto Path = iota
	// PathIR2 is the IR²-Tree distance-first traversal with
	// signature pruning (the paper's main algorithm, §4).
	PathIR2
	// PathIIO is "inverted index only": intersect posting lists,
	// load the survivors, sort by distance (§5 baseline).
	PathIIO
	// PathRTree is the plain R-Tree traversal with all keyword
	// work done as a residual filter on loaded objects.
	PathRTree
	// PathRanked is the MIR²-Tree scored traversal; it is the only
	// path for RANKED projections and never chosen elsewhere.
	PathRanked
)

// String returns the lower-case spelling used in USING clauses and
// EXPLAIN output.
func (p Path) String() string {
	switch p {
	case PathAuto:
		return "auto"
	case PathIR2:
		return "ir2"
	case PathIIO:
		return "iio"
	case PathRTree:
		return "rtree"
	case PathRanked:
		return "ranked"
	}
	return "?"
}

// CmpOp is the comparison operator in a WHERE score clause.
type CmpOp int

const (
	// CmpGT is ">".
	CmpGT CmpOp = iota
	// CmpGE is ">=".
	CmpGE
)

func (op CmpOp) String() string {
	if op == CmpGE {
		return ">="
	}
	return ">"
}

// ScoreFilter is a WHERE score <op> <value> clause.
type ScoreFilter struct {
	Op    CmpOp
	Value float64
}

// Rect is an axis-aligned query rectangle in the WITHIN clause,
// spelled rect(lox, loy, hix, hiy).
type Rect struct {
	Lo [2]float64
	Hi [2]float64
}

// Query is the typed AST of one SKQL statement.
type Query struct {
	Explain bool // EXPLAIN prefix: plan only, no execution
	Analyze bool // EXPLAIN ANALYZE: execute and report actuals

	Proj Proj
	K    int // TOP/RANKED k; 0 for ALL/COUNT

	Near   []float64 // nil when absent; always 2-D when present
	Match  Expr      // nil when absent (match everything)
	Where  *ScoreFilter
	Within *Rect
	Force  Path // USING clause; PathAuto when absent
}

// Expr is a boolean keyword expression: Term, Not, And, or Or.
type Expr interface {
	// write appends the canonical text form, parenthesizing when
	// the node's precedence is not above prec.
	write(b *strings.Builder, prec int)
}

// Term matches objects whose text contains the keyword.
type Term struct{ Word string }

// Not negates a sub-expression.
type Not struct{ X Expr }

// And requires every child to match. Kids has at least 2 entries.
type And struct{ Kids []Expr }

// Or requires at least one child to match. Kids has at least 2 entries.
type Or struct{ Kids []Expr }

// Expression precedence, loosest to tightest. A child at or below its
// parent's precedence is parenthesized, so printing is unambiguous and
// parse → print → parse is a fixpoint.
const (
	precOr = iota + 1
	precAnd
	precNot
	precTerm
)

func (t Term) write(b *strings.Builder, prec int) {
	b.WriteString(strconv.Quote(t.Word))
}

func (n Not) write(b *strings.Builder, prec int) {
	wrap := precNot <= prec
	if wrap {
		b.WriteByte('(')
	}
	b.WriteString("NOT ")
	n.X.write(b, precNot)
	if wrap {
		b.WriteByte(')')
	}
}

func (a And) write(b *strings.Builder, prec int) {
	wrap := precAnd <= prec
	if wrap {
		b.WriteByte('(')
	}
	for i, k := range a.Kids {
		if i > 0 {
			b.WriteString(" AND ")
		}
		k.write(b, precAnd)
	}
	if wrap {
		b.WriteByte(')')
	}
}

func (o Or) write(b *strings.Builder, prec int) {
	wrap := precOr <= prec
	if wrap {
		b.WriteByte('(')
	}
	for i, k := range o.Kids {
		if i > 0 {
			b.WriteString(" OR ")
		}
		k.write(b, precOr)
	}
	if wrap {
		b.WriteByte(')')
	}
}

// ExprString renders the canonical text form of a boolean expression.
func ExprString(e Expr) string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders the canonical text form of the query. Parsing the
// result yields a Query whose String is byte-identical (the fuzz
// round-trip property).
func (q *Query) String() string {
	var b strings.Builder
	if q.Explain {
		b.WriteString("EXPLAIN ")
		if q.Analyze {
			b.WriteString("ANALYZE ")
		}
	}
	b.WriteString("SELECT ")
	b.WriteString(q.Proj.String())
	if q.Proj == ProjTop || q.Proj == ProjRanked {
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(q.K))
	}
	if q.Near != nil {
		b.WriteString(" NEAR (")
		b.WriteString(formatFloat(q.Near[0]))
		b.WriteString(", ")
		b.WriteString(formatFloat(q.Near[1]))
		b.WriteByte(')')
	}
	if q.Match != nil {
		b.WriteString(" MATCH ")
		q.Match.write(&b, 0)
	}
	if q.Where != nil {
		b.WriteString(" WHERE score ")
		b.WriteString(q.Where.Op.String())
		b.WriteByte(' ')
		b.WriteString(formatFloat(q.Where.Value))
	}
	if q.Within != nil {
		b.WriteString(" WITHIN rect(")
		b.WriteString(formatFloat(q.Within.Lo[0]))
		b.WriteString(", ")
		b.WriteString(formatFloat(q.Within.Lo[1]))
		b.WriteString(", ")
		b.WriteString(formatFloat(q.Within.Hi[0]))
		b.WriteString(", ")
		b.WriteString(formatFloat(q.Within.Hi[1]))
		b.WriteByte(')')
	}
	if q.Force != PathAuto {
		b.WriteString(" USING ")
		b.WriteString(q.Force.String())
	}
	return b.String()
}
