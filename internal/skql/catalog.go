package skql

import (
	"fmt"
	"sync"

	"spatialkeyword"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// Target is the read surface a plan executes against. It is satisfied
// by *spatialkeyword.Engine, *shard.ShardedEngine, *repl.Follower, and
// skserve's lock-wrapped engine.
type Target interface {
	Get(id uint64) (spatialkeyword.Object, error)
	TopKWithStats(k int, point []float64, keywords ...string) ([]spatialkeyword.Result, spatialkeyword.QueryStats, error)
	TopKRanked(k int, point []float64, keywords ...string) ([]spatialkeyword.RankedResult, error)
	TopKArea(k int, lo, hi []float64, keywords ...string) ([]spatialkeyword.Result, error)
	WithinArea(lo, hi []float64, keywords ...string) ([]spatialkeyword.Result, error)
	NumObjects() int
	Scan(fn func(spatialkeyword.Object) error) error
	IsDeleted(id uint64) bool
	Stats() spatialkeyword.Stats
}

// corpusProvider is an optional Target extension: engine-maintained
// corpus statistics (document frequencies for the cost model). Targets
// without it fall back to the catalog's sidecar inverted index.
type corpusProvider interface {
	Corpus() spatialkeyword.CorpusStats
}

// ioMeter is an optional Target extension: disk counters for EXPLAIN
// ANALYZE actual block reads on paths that do not report their own
// per-query stats.
type ioMeter interface {
	MeterIO() func() (random, sequential uint64)
}

// flusher is an optional Target extension: engines that buffer adds
// flush the deferred indexing on their first query. The catalog
// flushes explicitly at plan time so that one-time build I/O lands
// before the cost model reads the tree statistics and before any
// operator meter starts — not inside the first operator's actuals.
type flusher interface {
	Flush() error
}

// flushTarget pushes any buffered adds through the target's deferred
// indexing. A no-op for targets without a Flush or with nothing
// pending.
func (c *Catalog) flushTarget() error {
	if f, ok := c.t.(flusher); ok {
		return f.Flush()
	}
	return nil
}

// streamer is an optional Target extension: the single engine's
// incremental distance-first iterators, which let the executor apply
// residual filters without re-running widening top-k queries.
type streamer interface {
	Search(point []float64, keywords ...string) (*spatialkeyword.SearchIter, error)
	SearchArea(lo, hi []float64, keywords ...string) (*spatialkeyword.SearchIter, error)
}

// rankedStreamer is streamer's scored counterpart.
type rankedStreamer interface {
	SearchRanked(point []float64, keywords ...string) (*spatialkeyword.RankedSearchIter, error)
}

// Catalog binds a Target to the planner: it owns the text analyzer the
// query terms are normalized with, the cost-model constants, and a
// lazily built sidecar inverted index that serves the IIO physical
// path (and document frequencies for targets without a Corpus).
//
// A Catalog is safe for concurrent queries; the sidecar build is
// serialized internally. The Analyzer and tuning fields must be set
// before the first query.
type Catalog struct {
	// Analyzer normalizes query terms and sidecar index tokens. It
	// must match the target engine's text configuration; nil is the
	// plain pipeline (the default engine configuration).
	Analyzer *textutil.Analyzer
	// Model is the storage cost model for estimated and modeled
	// times. The zero value means storage.DefaultCostModel().
	Model storage.CostModel
	// MaxBranches caps the DNF split. Zero means DefaultMaxBranches.
	MaxBranches int
	// PostingsPerBlock and BlocksPerObject override the cost-model
	// layout constants (zero = defaults, see CostInputs).
	PostingsPerBlock int
	BlocksPerObject  float64

	t Target

	// The sidecar inverted index: built from a target Scan on first
	// use, rebuilt when the target's object count changes. Deleted
	// objects are filtered at execution time via IsDeleted, so
	// deletions alone do not force a rebuild.
	mu     sync.Mutex
	inv    *invindex.Index
	invDev *storage.Disk
	invN   int
}

// NewCatalog returns a Catalog over the target with default settings.
func NewCatalog(t Target) *Catalog {
	return &Catalog{t: t}
}

// Target returns the catalog's execution target.
func (c *Catalog) Target() Target { return c.t }

// SidecarDevice returns the device backing the sidecar inverted
// index, or nil if the index has not been built. Benchmarks meter it
// alongside the engine's own devices.
func (c *Catalog) SidecarDevice() storage.Device {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inv == nil {
		return nil
	}
	return c.invDev
}

// EnsureIndex builds (or refreshes) the sidecar inverted index now
// instead of on first IIO execution, so benchmarks can meter query
// I/O without the one-time build cost.
func (c *Catalog) EnsureIndex() error {
	_, err := c.index()
	return err
}

// index returns the sidecar inverted index, building it if the target
// has grown since the last build.
func (c *Catalog) index() (*invindex.Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.t.NumObjects()
	if c.inv != nil && c.invN == n {
		return c.inv, nil
	}
	dev := storage.NewDisk(4096)
	ix := invindex.New(dev)
	err := c.t.Scan(func(o spatialkeyword.Object) error {
		ix.Add(o.ID, c.Analyzer.Unique(o.Text))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("skql: build sidecar index: %w", err)
	}
	if err := ix.Build(); err != nil {
		return nil, fmt.Errorf("skql: build sidecar index: %w", err)
	}
	c.inv, c.invDev, c.invN = ix, dev, n
	return ix, nil
}

// maxBranches returns the effective DNF cap.
func (c *Catalog) maxBranches() int {
	if c.MaxBranches > 0 {
		return c.MaxBranches
	}
	return DefaultMaxBranches
}

// costInputs assembles the cost model's inputs from plan-time-free
// statistics: the target's corpus statistics when it maintains them,
// else the sidecar index's dictionary (which may trigger a build).
func (c *Catalog) costInputs() (CostInputs, error) {
	in := CostInputs{
		NumObjects:       c.t.NumObjects(),
		PostingsPerBlock: c.PostingsPerBlock,
		BlocksPerObject:  c.BlocksPerObject,
		TreeHeight:       c.t.Stats().TreeHeight,
		Model:            c.Model,
	}
	if cp, ok := c.t.(corpusProvider); ok {
		cs := cp.Corpus()
		in.DocFreq = cs.DocFreq
		return in, nil
	}
	ix, err := c.index()
	if err != nil {
		return CostInputs{}, err
	}
	in.DocFreq = ix.DocFreq
	return in, nil
}
