package skql

import (
	"math"
	"time"

	"spatialkeyword/internal/storage"
)

// CostInputs is everything the cost model needs, all of it free at
// plan time: corpus size, keyword document frequencies (from the
// engine vocabulary or a sidecar inverted index), layout constants,
// and the deterministic storage cost model. This is the one cost
// model in the repository; internal/planner is a thin shim over it.
type CostInputs struct {
	// NumObjects is the corpus size N.
	NumObjects int
	// DocFreq returns the document frequency of a normalized term.
	DocFreq func(term string) int
	// PostingsPerBlock estimates how many postings fit in one block
	// (varint-delta encoded ≈ 2 bytes each at 4 KB). Zero means 2048.
	PostingsPerBlock int
	// BlocksPerObject estimates the cost of loading one object.
	// Zero means 1.
	BlocksPerObject float64
	// TreeFanout is the R-Tree max entries per node. Zero means 64.
	TreeFanout int
	// TreeHeight is the R-Tree height. Zero means an estimate from
	// NumObjects and TreeFanout.
	TreeHeight int
	// Model converts estimated block counts into modeled time.
	// The zero value means storage.DefaultCostModel().
	Model storage.CostModel
}

// sigFalsePositiveRate is the modeled probability that a non-matching
// entry still passes the signature test and is loaded then discarded.
// Signatures prune for free (the node carrying them is read anyway),
// so the IR²-Tree loads matches plus this fraction of the rest — the
// asymmetry against the plain R-Tree scan, which loads every entry it
// examines. A flat 20% is the small-signature (8-byte) regime of the
// paper's Restaurants setup; larger signatures only widen the gap.
const sigFalsePositiveRate = 0.2

func (in CostInputs) postingsPerBlock() float64 {
	if in.PostingsPerBlock > 0 {
		return float64(in.PostingsPerBlock)
	}
	return 2048
}

func (in CostInputs) objBlocks() float64 {
	if in.BlocksPerObject > 0 {
		return in.BlocksPerObject
	}
	return 1
}

func (in CostInputs) fanout() float64 {
	if in.TreeFanout > 0 {
		return float64(in.TreeFanout)
	}
	return 64
}

func (in CostInputs) height() float64 {
	if in.TreeHeight > 0 {
		return float64(in.TreeHeight)
	}
	n := math.Max(2, float64(in.NumObjects))
	return math.Max(1, math.Ceil(math.Log(n)/math.Log(math.Max(2, in.fanout()))))
}

func (in CostInputs) model() storage.CostModel {
	if in.Model == (storage.CostModel{}) {
		return storage.DefaultCostModel()
	}
	return in.Model
}

// TermSelectivity returns df/N for one term under the independence
// assumption, clamped to [0, 1].
func (in CostInputs) TermSelectivity(term string) float64 {
	if in.NumObjects <= 0 {
		return 0
	}
	s := float64(in.DocFreq(term)) / float64(in.NumObjects)
	return math.Min(1, math.Max(0, s))
}

// conjunction folds the shared per-keyword loop: the smallest document
// frequency, the product selectivity, and total posting-list blocks.
// An empty conjunction matches everything.
func (in CostInputs) conjunction(terms []string) (minDF int, sel float64, postingBlocks float64) {
	n := in.NumObjects
	minDF = n
	sel = 1.0
	perBlock := in.postingsPerBlock()
	for _, t := range terms {
		df := in.DocFreq(t)
		if df < minDF {
			minDF = df
		}
		if n > 0 {
			sel *= float64(df) / float64(n)
		}
		postingBlocks += math.Ceil(float64(df) / perBlock)
	}
	return minDF, sel, postingBlocks
}

// PathEstimate is the cost model's verdict for one physical operator.
type PathEstimate struct {
	Path Path
	// Blocks is the estimated block-access cost.
	Blocks float64
	// Rows is the estimated number of rows the operator emits.
	Rows float64
	// MinDF is the smallest document frequency among pushed terms.
	MinDF int
	// Selectivity is the estimated fraction of the corpus matching
	// the operator's full predicate (pushed terms and residual).
	Selectivity float64
}

// ModeledTime converts an estimated block count into modeled disk
// time, charging every estimated access at the random rate — plan
// estimates cannot know which accesses will coalesce sequentially.
func (in CostInputs) ModeledTime(blocks float64) time.Duration {
	return time.Duration(math.Round(blocks)) * in.model().RandomAccess
}

// EstimateIIO costs the Inverted Index Only path for a conjunction:
// read every keyword's posting list, then load every object of the
// intersection (bounded above by the rarest list). The cost is
// independent of k and of any residual filter, which is applied to
// already-loaded objects for free.
func (in CostInputs) EstimateIIO(pos []string, residualSel float64) PathEstimate {
	minDF, sel, postingBlocks := in.conjunction(pos)
	expected := sel * float64(in.NumObjects)
	candidates := math.Min(expected, float64(minDF))
	return PathEstimate{
		Path:        PathIIO,
		Blocks:      postingBlocks + candidates*in.objBlocks(),
		Rows:        expected * clamp01(residualSel),
		MinDF:       minDF,
		Selectivity: sel * clamp01(residualSel),
	}
}

// EstimateIR2 costs the IR²-Tree distance-first path: walk entries in
// distance order until k pass both the pushed conjunction and the
// residual filter. Signatures reject non-matching entries before the
// object load, so only matches and signature false positives are
// loaded; residualSel < 1 inflates how deep the walk must go.
func (in CostInputs) EstimateIR2(k int, pos []string, residualSel float64) PathEstimate {
	minDF, sel, _ := in.conjunction(pos)
	n := float64(in.NumObjects)
	fullSel := sel * clamp01(residualSel)
	var scanned float64
	if fullSel > 0 {
		scanned = math.Min(float64(k)/fullSel, n)
	} else {
		scanned = n // nothing matches: worst case, full traversal
	}
	loads := scanned * (fullSel + (1-fullSel)*sigFalsePositiveRate)
	nodeReads := scanned/math.Max(1, in.fanout()) + in.height()
	return PathEstimate{
		Path:        PathIR2,
		Blocks:      loads*in.objBlocks() + nodeReads,
		Rows:        math.Min(float64(k), fullSel*n),
		MinDF:       minDF,
		Selectivity: fullSel,
	}
}

// EstimateRTree costs the plain R-Tree filter-scan: walk objects in
// distance order loading every candidate (no signature pruning) until
// k pass the residual boolean filter. With ubiquitous keywords this
// wins because it loads barely more objects than it returns and skips
// all posting I/O — the paper's other extreme (§6.B).
func (in CostInputs) EstimateRTree(k int, fullSel float64) PathEstimate {
	n := float64(in.NumObjects)
	fullSel = clamp01(fullSel)
	var scanned float64
	if fullSel > 0 {
		scanned = math.Min(float64(k)/fullSel, n)
	} else {
		scanned = n
	}
	nodeReads := scanned/math.Max(1, in.fanout()) + in.height()
	return PathEstimate{
		Path:        PathRTree,
		Blocks:      scanned*in.objBlocks() + nodeReads,
		Rows:        math.Min(float64(k), fullSel*n),
		Selectivity: fullSel,
	}
}

// EstimateRankedScan costs the MIR²-Tree scored traversal for RANKED
// projections. The scored frontier visits roughly the objects holding
// any query term (union selectivity); each is loaded once.
func (in CostInputs) EstimateRankedScan(k int, pos []string, treeSel float64) PathEstimate {
	n := float64(in.NumObjects)
	miss := 1.0
	for _, t := range pos {
		miss *= 1 - in.TermSelectivity(t)
	}
	unionSel := 1 - miss
	scanned := math.Max(float64(k), unionSel*n)
	scanned = math.Min(scanned, n)
	nodeReads := scanned/math.Max(1, in.fanout()) + in.height()
	return PathEstimate{
		Path:        PathRanked,
		Blocks:      scanned*in.objBlocks() + nodeReads,
		Rows:        math.Min(float64(k), clamp01(treeSel)*n),
		Selectivity: clamp01(treeSel),
	}
}

// EstimateAreaNative costs the engine's native range scan (WithinArea
// / TopKArea) with a pushed conjunction. Without spatial histograms
// the rectangle is assumed to cover the data, making this an upper
// bound that still orders paths correctly by keyword selectivity.
func (in CostInputs) EstimateAreaNative(pos []string, residualSel float64) PathEstimate {
	minDF, sel, _ := in.conjunction(pos)
	n := float64(in.NumObjects)
	loads := (sel + (1-sel)*sigFalsePositiveRate) * n
	nodeReads := n/math.Max(1, in.fanout()) + in.height()
	fullSel := sel * clamp01(residualSel)
	return PathEstimate{
		Path:        PathIR2,
		Blocks:      loads*in.objBlocks() + nodeReads,
		Rows:        fullSel * n,
		MinDF:       minDF,
		Selectivity: fullSel,
	}
}

func clamp01(v float64) float64 {
	return math.Min(1, math.Max(0, v))
}
