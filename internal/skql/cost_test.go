package skql

import (
	"strings"
	"testing"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/storage"
)

// fakeInputs builds CostInputs over a synthetic corpus where term
// document frequencies come from a map (absent terms: df 0).
func fakeInputs(n int, df map[string]int) CostInputs {
	return CostInputs{
		NumObjects: n,
		DocFreq:    func(t string) int { return df[t] },
	}
}

// TestCostExtremes pins the paper's §6.B discussion: rare keywords
// favor the inverted-index-only plan, ubiquitous keywords favor the
// tree scan.
func TestCostExtremes(t *testing.T) {
	in := fakeInputs(100_000, map[string]int{
		"rare":   3,
		"rare2":  5,
		"common": 90_000,
	})
	k := 10

	rareIIO := in.EstimateIIO([]string{"rare", "rare2"}, 1)
	rareIR2 := in.EstimateIR2(k, []string{"rare", "rare2"}, 1)
	if rareIIO.Blocks >= rareIR2.Blocks {
		t.Fatalf("rare keywords: IIO %.1f blocks should beat IR2 %.1f", rareIIO.Blocks, rareIR2.Blocks)
	}

	comIIO := in.EstimateIIO([]string{"common"}, 1)
	comIR2 := in.EstimateIR2(k, []string{"common"}, 1)
	comRT := in.EstimateRTree(k, in.TermSelectivity("common"))
	if comIIO.Blocks <= comIR2.Blocks {
		t.Fatalf("common keyword: IR2 %.1f blocks should beat IIO %.1f", comIR2.Blocks, comIIO.Blocks)
	}
	if comRT.Blocks >= comIIO.Blocks {
		t.Fatalf("common keyword: R-Tree %.1f blocks should beat IIO %.1f", comRT.Blocks, comIIO.Blocks)
	}
}

// TestCostEstimateFields sanity-checks the per-estimate metadata.
func TestCostEstimateFields(t *testing.T) {
	in := fakeInputs(1000, map[string]int{"a": 10, "b": 100})
	est := in.EstimateIIO([]string{"a", "b"}, 1)
	if est.MinDF != 10 {
		t.Fatalf("MinDF = %d, want 10", est.MinDF)
	}
	wantSel := (10.0 / 1000) * (100.0 / 1000)
	if est.Selectivity != wantSel {
		t.Fatalf("Selectivity = %v, want %v", est.Selectivity, wantSel)
	}
	if est.Rows != wantSel*1000 {
		t.Fatalf("Rows = %v, want %v", est.Rows, wantSel*1000)
	}
	// A residual filter shrinks rows but never grows cost.
	withRes := in.EstimateIIO([]string{"a", "b"}, 0.5)
	if withRes.Rows >= est.Rows || withRes.Blocks != est.Blocks {
		t.Fatalf("residual: rows %v (was %v), blocks %v (was %v)",
			withRes.Rows, est.Rows, withRes.Blocks, est.Blocks)
	}
}

// TestModeledTime pins the deterministic time model: block counts times
// the cost model's random access rate, no wall clock anywhere.
func TestModeledTime(t *testing.T) {
	in := CostInputs{Model: storage.CostModel{RandomAccess: 8 * time.Millisecond, SequentialAccess: 60 * time.Microsecond}}
	if got := in.ModeledTime(10); got != 80*time.Millisecond {
		t.Fatalf("ModeledTime(10) = %v, want 80ms", got)
	}
	if got := actualTime(in, 3, 100); got != 24*time.Millisecond+6*time.Millisecond {
		t.Fatalf("actualTime(3, 100) = %v, want 30ms", got)
	}
}

// planTestCatalog builds a small engine with skewed term frequencies:
// "common" in every doc, "rare" in two docs.
func planTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	e, err := spatialkeyword.NewEngine(spatialkeyword.Config{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i := 0; i < 400; i++ {
		text := "common filler"
		if i < 2 {
			text += " rare"
		}
		if i%2 == 0 {
			text += " half"
		}
		if _, err := e.Add([]float64{float64(i) * 0.37, float64(i) * 0.61}, text); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return NewCatalog(e)
}

func mustPlan(t *testing.T, c *Catalog, src string) *Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	p, err := c.BuildPlan(q)
	if err != nil {
		t.Fatalf("BuildPlan(%q): %v", src, err)
	}
	return p
}

// TestPlannerRoutesByFrequency checks the auto planner picks the IIO
// path for rare keywords and an engine scan for ubiquitous ones.
func TestPlannerRoutesByFrequency(t *testing.T) {
	c := planTestCatalog(t)
	rare := mustPlan(t, c, `SELECT TOP 5 NEAR (1, 1) MATCH "rare"`)
	if len(rare.Ops) != 1 || rare.Ops[0].Path != PathIIO {
		t.Fatalf("rare keyword plan chose %v, want one IIO op", rare.Ops)
	}
	common := mustPlan(t, c, `SELECT TOP 5 NEAR (1, 1) MATCH "common"`)
	if len(common.Ops) != 1 || common.Ops[0].Path == PathIIO {
		t.Fatalf("common keyword plan chose %v, want a tree path", common.Ops)
	}
}

// TestPlanShapes checks DNF splitting, common-conjunct pushdown, and
// the single-scan fallback.
func TestPlanShapes(t *testing.T) {
	c := planTestCatalog(t)

	// OR of two conjunctions: a branch plan with per-branch operators.
	p := mustPlan(t, c, `SELECT TOP 5 NEAR (1, 1) MATCH ("rare" AND "half") OR ("rare" AND "common") USING ir2`)
	if !p.DNF || len(p.Ops) != 2 {
		t.Fatalf("expected 2-branch dnf plan, got DNF=%v ops=%d", p.DNF, len(p.Ops))
	}
	if got := p.Common; len(got) != 1 || got[0] != "rare" {
		t.Fatalf("common conjuncts = %v, want [rare]", got)
	}

	// NOT above an OR cannot push per-branch IR2; falls to single scan.
	p = mustPlan(t, c, `SELECT TOP 5 NEAR (1, 1) MATCH "common" AND NOT ("rare" OR "half") USING rtree`)
	if p.DNF || len(p.Ops) != 1 || p.Ops[0].Path != PathRTree {
		t.Fatalf("forced rtree: got DNF=%v ops=%+v", p.DNF, p.Ops)
	}
	if p.Ops[0].Residual == nil {
		t.Fatalf("single scan must carry the full tree as residual")
	}

	// Contradiction plans to an empty operator list.
	p = mustPlan(t, c, `SELECT TOP 5 NEAR (1, 1) MATCH "rare" AND NOT "rare"`)
	if len(p.Ops) != 0 {
		t.Fatalf("contradiction: expected no ops, got %+v", p.Ops)
	}

	// A wide OR past the branch cap falls back to one filter scan.
	wide := make([]string, 0, DefaultMaxBranches+1)
	for i := 0; i <= DefaultMaxBranches; i++ {
		wide = append(wide, `"w`+strings.Repeat("x", i)+`"`)
	}
	p = mustPlan(t, c, `SELECT TOP 5 NEAR (1, 1) MATCH `+strings.Join(wide, " OR "))
	if p.DNF || len(p.Ops) != 1 {
		t.Fatalf("wide OR: expected single-scan fallback, got DNF=%v ops=%d", p.DNF, len(p.Ops))
	}

	// RANKED plans the scored traversal over the positive terms.
	p = mustPlan(t, c, `SELECT RANKED 3 NEAR (1, 1) MATCH ("rare" OR "half") AND NOT "common"`)
	if len(p.Ops) != 1 || p.Ops[0].Path != PathRanked {
		t.Fatalf("ranked plan: %+v", p.Ops)
	}
	if got := p.Ops[0].Conj; len(got) != 2 || got[0] != "rare" || got[1] != "half" {
		t.Fatalf("ranked scoring terms = %v, want [rare half]", got)
	}
}

// TestPlanValidation checks the semantic rules the grammar cannot
// express.
func TestPlanValidation(t *testing.T) {
	c := planTestCatalog(t)
	cases := []struct{ src, wantSub string }{
		{`SELECT TOP 5 MATCH "a"`, "requires NEAR or WITHIN"},
		{`SELECT RANKED 5 MATCH "a" WITHIN rect(0, 0, 1, 1)`, "requires NEAR"},
		{`SELECT RANKED 5 NEAR (1, 1)`, "requires MATCH"},
		{`SELECT RANKED 5 NEAR (1, 1) MATCH NOT "a"`, "positive keyword"},
		{`SELECT RANKED 5 NEAR (1, 1) MATCH "a" USING ir2`, "drop USING"},
		{`SELECT ALL MATCH "a"`, "requires WITHIN"},
		{`SELECT COUNT NEAR (1, 1) WITHIN rect(0, 0, 1, 1)`, "does not take NEAR"},
		{`SELECT TOP 5 NEAR (1, 1) WHERE score > 0.5`, "requires SELECT RANKED"},
		{`SELECT TOP 5 NEAR (1, 1) WHERE score >= 0`, "requires SELECT RANKED"},
		{`SELECT ALL WITHIN rect(5, 0, 1, 1)`, "inverted WITHIN rect"},
		{`SELECT TOP 5 NEAR (1, 1) USING iio`, "USING iio requires MATCH"},
		{`SELECT TOP 5 NEAR (1, 1) MATCH NOT "a" USING iio`, "USING iio requires"},
	}
	for _, tc := range cases {
		q, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		_, err = c.BuildPlan(q)
		if err == nil {
			t.Errorf("BuildPlan(%q): expected error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("BuildPlan(%q) error = %q, want substring %q", tc.src, err.Error(), tc.wantSub)
		}
	}

	// The paper's no-op score filter is accepted on boolean queries.
	q, err := Parse(`SELECT TOP 5 NEAR (1, 1) MATCH "a" WHERE score > 0`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := c.BuildPlan(q); err != nil {
		t.Fatalf("score > 0 on TOP should be accepted: %v", err)
	}
}
