package skql

import (
	"errors"
	"fmt"
	"sort"

	"spatialkeyword"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/storage"
)

// maxTraceLines caps how much of the engine traversal trace EXPLAIN
// ANALYZE folds into its output per operator.
const maxTraceLines = 40

// OpActual records what one operator actually did at execution time,
// for EXPLAIN ANALYZE's estimated-vs-actual comparison.
type OpActual struct {
	// Rows is how many results the operator emitted (pre-merge).
	Rows int
	// Candidates is how many candidates the operator examined before
	// residual filtering (stream results pulled, widened top-k size,
	// or posting-intersection cardinality).
	Candidates int
	// Stats are the engine traversal counters, when the path exposes
	// them (zero for IIO and stat-less engine calls).
	Stats spatialkeyword.QueryStats
	// BlocksRandom and BlocksSequential are the actual device block
	// accesses (engine devices plus the sidecar index).
	BlocksRandom, BlocksSequential uint64
	// Trace is the folded engine traversal trace (EXPLAIN ANALYZE on
	// streaming targets only), capped at maxTraceLines.
	Trace []string
}

// ResultSet is the answer of one executed (or explained) statement.
type ResultSet struct {
	// Proj echoes the statement's projection, which selects among the
	// payload fields below.
	Proj Proj
	// Results holds TOP and ALL answers (ALL: Dist 0, ID order).
	Results []spatialkeyword.Result
	// Ranked holds RANKED answers.
	Ranked []spatialkeyword.RankedResult
	// Count holds the COUNT answer (also set for ALL).
	Count int
	// Plan is the executed (or explained) physical plan.
	Plan *Plan
	// Actuals has one entry per plan operator once executed.
	Actuals []OpActual
	// Explain is the rendered EXPLAIN / EXPLAIN ANALYZE text, one
	// line per entry, when the statement requested it.
	Explain []string
}

// Run plans and executes one statement. EXPLAIN (without ANALYZE)
// only plans; EXPLAIN ANALYZE executes and reports both the results
// and the estimated-vs-actual comparison.
func (c *Catalog) Run(q *Query) (*ResultSet, error) {
	p, err := c.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	return c.RunPlan(p)
}

// RunPlan executes an already built plan — callers that want to time
// planning and execution separately (or re-run a plan) use this pair
// instead of Run.
func (c *Catalog) RunPlan(p *Plan) (*ResultSet, error) {
	q := p.Query
	rs := &ResultSet{Proj: q.Proj, Plan: p}
	if q.Explain && !q.Analyze {
		rs.Explain = renderPlan(p, nil)
		return rs, nil
	}
	if err := c.execute(p, rs); err != nil {
		return nil, err
	}
	if q.Explain {
		rs.Explain = renderPlan(p, rs.Actuals)
	}
	return rs, nil
}

func (c *Catalog) execute(p *Plan, rs *ResultSet) error {
	// RunPlan may execute a plan built before new adds were buffered;
	// flush outside the operator meters so deferred indexing I/O never
	// inflates an operator's actual block counts.
	if err := c.flushTarget(); err != nil {
		return err
	}
	switch p.Query.Proj {
	case ProjRanked:
		return c.execRanked(p, rs)
	case ProjAll, ProjCount:
		return c.execArea(p, rs)
	default:
		return c.execTop(p, rs)
	}
}

// opMeter snapshots every relevant device counter (the target's
// engines and the sidecar index); the returned function reports the
// blocks accessed since.
func (c *Catalog) opMeter() func() (random, sequential uint64) {
	var stops []func() (uint64, uint64)
	if m, ok := c.t.(ioMeter); ok {
		stops = append(stops, m.MeterIO())
	}
	c.mu.Lock()
	if c.invDev != nil {
		m := storage.StartMeter(c.invDev)
		stops = append(stops, func() (uint64, uint64) {
			st := m.Stop()
			return st.Random(), st.Sequential()
		})
	}
	c.mu.Unlock()
	return func() (r, s uint64) {
		for _, f := range stops {
			a, b := f()
			r += a
			s += b
		}
		return r, s
	}
}

func termSet(words []string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// acceptFn builds the residual predicate for a boolean operator: the
// term filters (Conj, Neg, Residual) plus the hard rectangle filter
// when the projection confines results to the WITHIN rect (ALL/COUNT,
// or TOP combining NEAR with WITHIN; TOP with WITHIN alone orders by
// distance-to-rect and keeps outside objects, matching TopKArea).
func (c *Catalog) acceptFn(p *Plan, op *Operator) func(o spatialkeyword.Object) bool {
	q := p.Query
	needRect := q.Within != nil && (q.Near != nil || q.Proj == ProjAll || q.Proj == ProjCount)
	var rect geo.Rect
	if needRect {
		rect = geo.NewRect(geo.NewPoint(q.Within.Lo[:]...), geo.NewPoint(q.Within.Hi[:]...))
	}
	trivialTerms := len(op.Conj) == 0 && len(op.Neg) == 0 && op.Residual == nil
	return func(o spatialkeyword.Object) bool {
		if needRect && !rect.ContainsPoint(geo.NewPoint(o.Point...)) {
			return false
		}
		if trivialTerms {
			return true
		}
		set := termSet(c.Analyzer.Unique(o.Text))
		return op.requires(func(t string) bool { return set[t] })
	}
}

// traceCollector renders engine traversal events in the same format as
// Engine.Explain, truncating at maxTraceLines.
func traceCollector(lines *[]string) func(rtree.TraceEvent) {
	return func(ev rtree.TraceEvent) {
		if len(*lines) >= maxTraceLines {
			if len(*lines) == maxTraceLines {
				*lines = append(*lines, "... trace truncated")
			}
			return
		}
		switch ev.Kind {
		case rtree.TraceExpand:
			*lines = append(*lines, fmt.Sprintf("expand node %d (level %d, bound %.2f)", ev.Node, ev.Level, ev.Score))
		case rtree.TraceEnqueueNode:
			*lines = append(*lines, fmt.Sprintf("  enqueue subtree %d (dist >= %.2f)", ev.Child, ev.Score))
		case rtree.TraceEnqueueObject:
			*lines = append(*lines, fmt.Sprintf("  enqueue object %d (dist %.2f)", ev.Child, ev.Score))
		case rtree.TracePrune:
			what := "subtree"
			if ev.Level == 0 {
				what = "object"
			}
			*lines = append(*lines, fmt.Sprintf("  prune %s %d: signature mismatch", what, ev.Child))
		case rtree.TraceEmit:
			*lines = append(*lines, fmt.Sprintf("emit object %d (dist %.2f)", ev.Child, ev.Score))
		}
	}
}

// --- TOP k ---

func (c *Catalog) execTop(p *Plan, rs *ResultSet) error {
	q := p.Query
	var all []spatialkeyword.Result
	for i := range p.Ops {
		op := &p.Ops[i]
		var out []spatialkeyword.Result
		var act OpActual
		var err error
		if op.Path == PathIIO {
			out, act, err = c.runIIOTop(p, op)
		} else {
			out, act, err = c.runEngineTop(p, op)
		}
		if err != nil {
			return err
		}
		rs.Actuals = append(rs.Actuals, act)
		all = append(all, out...)
	}
	if len(p.Ops) > 1 {
		all = mergeByDistance(all, q.K)
	} else if len(all) > q.K {
		all = all[:q.K]
	}
	rs.Results = all
	rs.Count = len(all)
	return nil
}

// runEngineTop executes a distance-first operator against the engine:
// incrementally on streaming targets, by widening top-k calls
// elsewhere (sharded engines, followers, lock-wrapped engines).
//
// SKQL's TOP is deterministic: ties at the k-th distance break by
// smallest object ID regardless of engine traversal order, so every
// physical path answers byte-identically. Both strategies therefore
// keep fetching past k accepted results until the next candidate is
// strictly farther than the k-th, then sort by (distance, ID).
func (c *Catalog) runEngineTop(p *Plan, op *Operator) ([]spatialkeyword.Result, OpActual, error) {
	q := p.Query
	var push []string
	if op.Path == PathIR2 {
		push = op.Conj
	}
	stop := c.opMeter()
	var act OpActual
	accept := c.acceptFn(p, op)
	var out []spatialkeyword.Result

	if st, ok := c.t.(streamer); ok {
		var it *spatialkeyword.SearchIter
		var err error
		if q.Near != nil {
			it, err = st.Search(q.Near, push...)
		} else {
			it, err = st.SearchArea(q.Within.Lo[:], q.Within.Hi[:], push...)
		}
		if err != nil {
			return nil, act, err
		}
		if q.Analyze {
			it.SetTrace(traceCollector(&act.Trace))
		}
		for {
			if len(out) >= op.K {
				// out is in non-decreasing distance order, so the
				// last element is the current k-th distance; drain
				// any remaining ties before stopping.
				bound, ok := it.PeekBound()
				if !ok || bound > out[len(out)-1].Dist {
					break
				}
			}
			r, ok, err := it.Next()
			if err != nil {
				return nil, act, err
			}
			if !ok {
				break
			}
			act.Candidates++
			if !accept(r.Object) {
				continue
			}
			out = append(out, r)
		}
		act.Stats = it.Stats()
	} else {
		kk := op.K * 2
		if kk < 16 {
			kk = 16
		}
		for {
			var rres []spatialkeyword.Result
			var qs spatialkeyword.QueryStats
			var err error
			if q.Near != nil {
				rres, qs, err = c.t.TopKWithStats(kk, q.Near, push...)
			} else {
				rres, err = c.t.TopKArea(kk, q.Within.Lo[:], q.Within.Hi[:], push...)
			}
			if err != nil {
				return nil, act, err
			}
			act.Stats = qs
			act.Candidates = len(rres)
			out = out[:0]
			for _, r := range rres {
				if !accept(r.Object) {
					continue
				}
				out = append(out, r)
			}
			// Stop when the engine is exhausted, or k results are in
			// hand and the widened fetch already reached strictly past
			// the k-th distance (so every unfetched object — at least
			// as far as the last fetched one — cannot tie into the top
			// k).
			exhausted := len(rres) < kk
			deepEnough := len(out) >= op.K && len(rres) > 0 &&
				rres[len(rres)-1].Dist > out[op.K-1].Dist
			if exhausted || deepEnough {
				break
			}
			kk *= 2
		}
	}
	sortByDistance(out)
	if len(out) > op.K {
		out = out[:op.K]
	}
	act.Rows = len(out)
	act.BlocksRandom, act.BlocksSequential = stop()
	return out, act, nil
}

// runIIOTop executes a distance-first operator on the Inverted Index
// Only path: intersect the sidecar posting lists, load the surviving
// objects, filter residually, sort by distance.
func (c *Catalog) runIIOTop(p *Plan, op *Operator) ([]spatialkeyword.Result, OpActual, error) {
	q := p.Query
	var act OpActual
	ix, err := c.index()
	if err != nil {
		return nil, act, err
	}
	stop := c.opMeter()
	ids, err := ix.Intersect(op.Conj)
	if err != nil {
		return nil, act, err
	}
	act.Candidates = len(ids)
	accept := c.acceptFn(p, op)

	var near geo.Point
	if q.Near != nil {
		near = geo.NewPoint(q.Near...)
	}
	var areaRect geo.Rect
	if q.Near == nil && q.Within != nil {
		// TOP ... WITHIN alone orders by distance-to-rect (TopKArea).
		areaRect = geo.NewRect(geo.NewPoint(q.Within.Lo[:]...), geo.NewPoint(q.Within.Hi[:]...))
	}

	var out []spatialkeyword.Result
	for _, id := range ids {
		if c.t.IsDeleted(id) {
			continue
		}
		o, err := c.t.Get(id)
		if err != nil {
			if errors.Is(err, spatialkeyword.ErrDeleted) || errors.Is(err, spatialkeyword.ErrUnknownID) {
				continue
			}
			return nil, act, err
		}
		if !accept(o) {
			continue
		}
		var dist float64
		pt := geo.NewPoint(o.Point...)
		if near != nil {
			if len(near) != len(pt) {
				return nil, act, fmt.Errorf("skql: query point has %d dimensions, object %d has %d", len(near), o.ID, len(pt))
			}
			dist = near.Dist(pt)
		} else {
			if len(areaRect.Lo) != len(pt) {
				return nil, act, fmt.Errorf("skql: query rect has %d dimensions, object %d has %d", len(areaRect.Lo), o.ID, len(pt))
			}
			dist = areaRect.MinDist(pt)
		}
		out = append(out, spatialkeyword.Result{Object: o, Dist: dist})
	}
	sortByDistance(out)
	if len(out) > op.K {
		out = out[:op.K]
	}
	act.Rows = len(out)
	act.BlocksRandom, act.BlocksSequential = stop()
	return out, act, nil
}

func sortByDistance(rs []spatialkeyword.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].Object.ID < rs[j].Object.ID
	})
}

// mergeByDistance unions branch outputs: dedupe by object ID, order by
// (distance, ID), keep k.
func mergeByDistance(rs []spatialkeyword.Result, k int) []spatialkeyword.Result {
	seen := make(map[uint64]bool, len(rs))
	out := rs[:0]
	for _, r := range rs {
		if seen[r.Object.ID] {
			continue
		}
		seen[r.Object.ID] = true
		out = append(out, r)
	}
	sortByDistance(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// --- RANKED k ---

func (c *Catalog) execRanked(p *Plan, rs *ResultSet) error {
	q := p.Query
	op := &p.Ops[0]
	stop := c.opMeter()
	var act OpActual

	// Unlike boolean operators, Conj here is the scoring term set —
	// results need not contain every term, so the residual is only the
	// boolean tree (when present), the rect, and the score threshold.
	var rect geo.Rect
	useRect := q.Within != nil
	if useRect {
		rect = geo.NewRect(geo.NewPoint(q.Within.Lo[:]...), geo.NewPoint(q.Within.Hi[:]...))
	}
	accept := func(o spatialkeyword.Object, score float64) bool {
		if useRect && !rect.ContainsPoint(geo.NewPoint(o.Point...)) {
			return false
		}
		if op.Residual != nil {
			set := termSet(c.Analyzer.Unique(o.Text))
			if !evalExpr(op.Residual, func(t string) bool { return set[t] }) {
				return false
			}
		}
		if q.Where != nil {
			if q.Where.Op == CmpGT && !(score > q.Where.Value) {
				return false
			}
			if q.Where.Op == CmpGE && !(score >= q.Where.Value) {
				return false
			}
		}
		return true
	}

	var out []spatialkeyword.RankedResult
	if st, ok := c.t.(rankedStreamer); ok {
		it, err := st.SearchRanked(q.Near, op.Conj...)
		if err != nil {
			return err
		}
		for len(out) < op.K {
			r, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			act.Candidates++
			if !accept(r.Object, r.Score) {
				continue
			}
			out = append(out, r)
		}
		act.Stats = it.Stats()
	} else {
		kk := op.K * 2
		if kk < 16 {
			kk = 16
		}
		for {
			rres, err := c.t.TopKRanked(kk, q.Near, op.Conj...)
			if err != nil {
				return err
			}
			act.Candidates = len(rres)
			out = out[:0]
			for _, r := range rres {
				if !accept(r.Object, r.Score) {
					continue
				}
				out = append(out, r)
				if len(out) == op.K {
					break
				}
			}
			if len(out) >= op.K || len(rres) < kk {
				break
			}
			kk *= 2
		}
	}
	act.Rows = len(out)
	act.BlocksRandom, act.BlocksSequential = stop()
	rs.Actuals = append(rs.Actuals, act)
	rs.Ranked = out
	rs.Count = len(out)
	return nil
}

// --- ALL / COUNT ---

func (c *Catalog) execArea(p *Plan, rs *ResultSet) error {
	q := p.Query
	if len(p.Ops) == 0 { // contradictory MATCH: matches nothing
		return nil
	}
	op := &p.Ops[0]
	var out []spatialkeyword.Result
	var act OpActual
	var err error
	if op.Path == PathIIO {
		out, act, err = c.runIIOArea(p, op)
	} else {
		out, act, err = c.runEngineArea(p, op)
	}
	if err != nil {
		return err
	}
	rs.Actuals = append(rs.Actuals, act)
	rs.Count = len(out)
	if q.Proj == ProjAll {
		rs.Results = out
	}
	return nil
}

func (c *Catalog) runEngineArea(p *Plan, op *Operator) ([]spatialkeyword.Result, OpActual, error) {
	q := p.Query
	var push []string
	if op.Path == PathIR2 {
		push = op.Conj
	}
	stop := c.opMeter()
	var act OpActual
	accept := c.acceptFn(p, op)
	rres, err := c.t.WithinArea(q.Within.Lo[:], q.Within.Hi[:], push...)
	if err != nil {
		return nil, act, err
	}
	act.Candidates = len(rres)
	out := rres[:0]
	for _, r := range rres {
		if !accept(r.Object) {
			continue
		}
		out = append(out, r)
	}
	act.Rows = len(out)
	act.BlocksRandom, act.BlocksSequential = stop()
	return out, act, nil
}

func (c *Catalog) runIIOArea(p *Plan, op *Operator) ([]spatialkeyword.Result, OpActual, error) {
	var act OpActual
	ix, err := c.index()
	if err != nil {
		return nil, act, err
	}
	stop := c.opMeter()
	ids, err := ix.Intersect(op.Conj)
	if err != nil {
		return nil, act, err
	}
	act.Candidates = len(ids)
	accept := c.acceptFn(p, op)
	var out []spatialkeyword.Result
	for _, id := range ids {
		if c.t.IsDeleted(id) {
			continue
		}
		o, err := c.t.Get(id)
		if err != nil {
			if errors.Is(err, spatialkeyword.ErrDeleted) || errors.Is(err, spatialkeyword.ErrUnknownID) {
				continue
			}
			return nil, act, err
		}
		if !accept(o) {
			continue
		}
		// WithinArea contract: results carry Dist 0 in ID order (the
		// intersection is already ID-sorted).
		out = append(out, spatialkeyword.Result{Object: o})
	}
	act.Rows = len(out)
	act.BlocksRandom, act.BlocksSequential = stop()
	return out, act, nil
}
