package skql

import (
	"fmt"
	"strings"
	"time"

	"spatialkeyword"
)

// String names the merge strategy for EXPLAIN output.
func (m Merge) String() string {
	switch m {
	case MergeRanked:
		return "ranked"
	case MergeUnion:
		return "union"
	case MergeCount:
		return "count"
	default:
		return "distance"
	}
}

// renderPlan formats a plan (and, when actuals is non-nil, its
// execution record) as EXPLAIN / EXPLAIN ANALYZE lines.
func renderPlan(p *Plan, actuals []OpActual) []string {
	q := p.Query
	var out []string
	out = append(out, q.String())

	shape := "single scan"
	switch {
	case len(p.Ops) == 0:
		shape = "empty (predicate matches nothing)"
	case p.DNF:
		shape = fmt.Sprintf("dnf union of %d branches", len(p.Ops))
	}
	head := fmt.Sprintf("plan: %s", strings.ToLower(q.Proj.String()))
	if q.Proj == ProjTop || q.Proj == ProjRanked {
		head += fmt.Sprintf(" %d", q.K)
	}
	head += fmt.Sprintf(", merge=%s, %s", p.Merge, shape)
	if q.Force != PathAuto {
		head += fmt.Sprintf(", forced path=%s", q.Force)
	}
	out = append(out, head)

	if len(p.Common) > 0 {
		out = append(out, fmt.Sprintf("  common conjuncts: %v", p.Common))
	}
	out = append(out, fmt.Sprintf("  cost inputs: n=%d height=%.0f fanout=%.0f postings/block=%.0f blocks/object=%.1f",
		p.In.NumObjects, p.In.height(), p.In.fanout(), p.In.postingsPerBlock(), p.In.objBlocks()))

	for i := range p.Ops {
		op := &p.Ops[i]
		line := fmt.Sprintf("  op %d: path=%s", i+1, op.Path)
		if len(op.Conj) > 0 {
			line += fmt.Sprintf(" conj=%v", op.Conj)
		}
		if len(op.Neg) > 0 {
			line += fmt.Sprintf(" neg=%v", op.Neg)
		}
		if op.Residual != nil {
			line += " residual=" + ExprString(op.Residual)
		}
		if op.K > 0 {
			line += fmt.Sprintf(" k=%d", op.K)
		}
		out = append(out, line)
		out = append(out, fmt.Sprintf("    est:    blocks=%.1f rows=%.1f sel=%.4g disk=%s",
			op.Est.Blocks, op.Est.Rows, op.Est.Selectivity, p.In.ModeledTime(op.Est.Blocks)))
		if actuals == nil || i >= len(actuals) {
			continue
		}
		a := actuals[i]
		out = append(out, fmt.Sprintf("    actual: blocks=%d (%d rand + %d seq) rows=%d candidates=%d disk=%s",
			a.BlocksRandom+a.BlocksSequential, a.BlocksRandom, a.BlocksSequential,
			a.Rows, a.Candidates, actualTime(p.In, a.BlocksRandom, a.BlocksSequential)))
		if a.Stats != (spatialkeyword.QueryStats{}) {
			out = append(out, fmt.Sprintf("    work:   nodes=%d objects=%d pruned=%d falsepos=%d",
				a.Stats.NodesLoaded, a.Stats.ObjectsLoaded, a.Stats.EntriesPruned, a.Stats.FalsePositives))
		}
		for _, t := range a.Trace {
			out = append(out, "    | "+t)
		}
	}

	out = append(out, fmt.Sprintf("  total: est blocks=%.1f est rows=%.1f est disk=%s",
		p.EstBlocks, p.EstRows, p.In.ModeledTime(p.EstBlocks)))
	return out
}

// actualTime converts measured block counts into modeled disk time,
// charging random and sequential accesses at their own rates (unlike
// plan estimates, actuals know which accesses coalesced).
func actualTime(in CostInputs, random, sequential uint64) time.Duration {
	m := in.model()
	return time.Duration(random)*m.RandomAccess + time.Duration(sequential)*m.SequentialAccess
}
