package skql

import (
	"strings"
	"testing"
)

func runExplain(t *testing.T, c *Catalog, src string) []string {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	rs, err := c.Run(q)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return rs.Explain
}

func wantLine(t *testing.T, lines []string, sub string) string {
	t.Helper()
	for _, l := range lines {
		if strings.Contains(l, sub) {
			return l
		}
	}
	t.Fatalf("no explain line contains %q in:\n%s", sub, strings.Join(lines, "\n"))
	return ""
}

// TestExplainOnly checks plain EXPLAIN: estimates render, the query
// does not execute, and no actuals appear.
func TestExplainOnly(t *testing.T) {
	c := planTestCatalog(t)
	lines := runExplain(t, c, `EXPLAIN SELECT TOP 5 NEAR (1, 1) MATCH "rare"`)
	wantLine(t, lines, `EXPLAIN SELECT TOP 5 NEAR (1, 1) MATCH "rare"`)
	wantLine(t, lines, "plan: top 5, merge=distance")
	wantLine(t, lines, "cost inputs: n=400")
	wantLine(t, lines, "path=iio")
	wantLine(t, lines, "est:    blocks=")
	wantLine(t, lines, "total: est blocks=")
	for _, l := range lines {
		if strings.Contains(l, "actual:") {
			t.Fatalf("plain EXPLAIN must not execute, got %q", l)
		}
	}
}

// countEstActual tallies per-operator estimated and actual block-read
// lines in EXPLAIN ANALYZE output.
func countEstActual(lines []string) (est, act int) {
	for _, l := range lines {
		if strings.Contains(l, "est:    blocks=") {
			est++
		}
		if strings.Contains(l, "actual: blocks=") {
			act++
		}
	}
	return est, act
}

// TestExplainAnalyzeMixedFrequency is the acceptance scenario from the
// paper's §6.B extremes in one query: a disjunction of a rare and a
// ubiquitous keyword. The common side makes the whole predicate
// unselective, so the planner folds the query into one tree scan (a
// per-branch split would pay that same scan for the common branch plus
// posting I/O on top), and EXPLAIN ANALYZE reports estimated vs actual
// block reads for the operator it ran.
func TestExplainAnalyzeMixedFrequency(t *testing.T) {
	c := planTestCatalog(t)
	src := `EXPLAIN ANALYZE SELECT TOP 5 NEAR (1, 1) MATCH "rare" OR "common"`
	lines := runExplain(t, c, src)

	wantLine(t, lines, "plan: top 5, merge=distance, single scan")
	if est, act := countEstActual(lines); est != 1 || act != 1 {
		t.Fatalf("want one est/actual pair, got est=%d actual=%d:\n%s",
			est, act, strings.Join(lines, "\n"))
	}
	wantLine(t, lines, "rand + ")
	wantLine(t, lines, "total: est blocks=")

	// EXPLAIN ANALYZE still returns the real results alongside the plan.
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rs, err := c.Run(q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rs.Results) == 0 {
		t.Fatalf("EXPLAIN ANALYZE returned no results")
	}
	plain, err := Parse(strings.TrimPrefix(src, "EXPLAIN ANALYZE "))
	if err != nil {
		t.Fatalf("Parse plain: %v", err)
	}
	prs, err := c.Run(plain)
	if err != nil {
		t.Fatalf("Run plain: %v", err)
	}
	if len(prs.Results) != len(rs.Results) {
		t.Fatalf("ANALYZE results differ from plain run: %d vs %d", len(rs.Results), len(prs.Results))
	}
	for i := range prs.Results {
		if prs.Results[i].Object.ID != rs.Results[i].Object.ID {
			t.Fatalf("result %d: ANALYZE ID %d vs plain %d", i, rs.Results[i].Object.ID, prs.Results[i].Object.ID)
		}
	}
}

// TestExplainAnalyzeDNFBranches checks a disjunction of two rare
// conjunctions splits into per-branch inverted-index operators, each
// with its own estimated and actual block reads.
func TestExplainAnalyzeDNFBranches(t *testing.T) {
	c := planTestCatalog(t)
	lines := runExplain(t, c,
		`EXPLAIN ANALYZE SELECT TOP 5 NEAR (1, 1) MATCH ("rare" AND "half") OR ("rare" AND "common")`)
	wantLine(t, lines, "dnf union of 2 branches")
	wantLine(t, lines, "common conjuncts: [rare]")
	wantLine(t, lines, "path=iio")
	if est, act := countEstActual(lines); est != 2 || act != 2 {
		t.Fatalf("want est/actual pairs for both operators, got est=%d actual=%d:\n%s",
			est, act, strings.Join(lines, "\n"))
	}
}

// TestExplainAnalyzeTraceFold checks the engine trace folds under the
// operator that produced it.
func TestExplainAnalyzeTraceFold(t *testing.T) {
	c := planTestCatalog(t)
	lines := runExplain(t, c, `EXPLAIN ANALYZE SELECT TOP 3 NEAR (1, 1) MATCH "common"`)
	var traced int
	for _, l := range lines {
		if strings.HasPrefix(l, "    | ") {
			traced++
		}
	}
	if traced == 0 {
		t.Fatalf("no folded engine trace lines:\n%s", strings.Join(lines, "\n"))
	}
}
