package skql

import (
	"testing"
)

// FuzzSKQLParse checks the parser's two safety properties on arbitrary
// input: it never panics, and any query it accepts canonicalizes to a
// fixpoint — Parse(q.String()).String() == q.String() — so the printed
// form is itself a valid query with identical meaning.
func FuzzSKQLParse(f *testing.F) {
	seeds := []string{
		"",
		"SELECT TOP 5 NEAR (1, 2)",
		`SELECT TOP 10 NEAR (3.5, -7) MATCH "cafe" AND wifi OR NOT "tea"`,
		`EXPLAIN ANALYZE SELECT RANKED 3 NEAR (2, 2) MATCH beach WHERE score >= 0.5`,
		`SELECT ALL WITHIN rect(0, 0, 10, 10) MATCH ("a" OR b) AND NOT c USING iio`,
		`SELECT COUNT WITHIN rect(-1.5, -2e3, 3, 4e2)`,
		`SELECT TOP 2 NEAR (1, 1) MATCH "quoted \"escape\"" USING rtree`,
		`select top 1000000 near (0.0001, 1e-9) match a and (b or (c and not d))`,
		"SELECT TOP 5 NEAR (1e999, 2)",
		`SELECT TOP 5 NEAR (1, 2) MATCH ""`,
		"SELECT TOP 5 NEAR (1, 2) MATCH NOT NOT NOT x",
		"SELECT TOP 5 NEAR (1, 2) MATCH (((((x)))))",
		"SELECT\tTOP 5\nNEAR (1, 2) MATCH \"café\" AND \"日本語\"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src) // must not panic
		if err != nil {
			return
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q from input %q: %v", s1, src, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("print not a fixpoint: %q -> %q (input %q)", s1, s2, src)
		}
		// The JSON form must round-trip the same AST.
		data, err := q.MarshalJSON()
		if err != nil {
			t.Fatalf("MarshalJSON(%q): %v", s1, err)
		}
		q3, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("ParseJSON(MarshalJSON(%q)) = %v on %s", s1, err, data)
		}
		if s3 := q3.String(); s3 != s1 {
			t.Fatalf("json round trip: %q -> %q", s1, s3)
		}
	})
}
