package skql

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// jsonQuery is the structured-JSON equivalent of the text language.
// Example:
//
//	{
//	  "explain": "analyze",
//	  "select": "top", "k": 10,
//	  "near": [35.1, -97.3],
//	  "match": {"and": [{"term": "pizza"},
//	                    {"or": [{"term": "vegan"}, {"term": "halal"}]}]},
//	  "where": {"score_gt": 0},
//	  "within": [34, -98, 36, -96],
//	  "using": "iio"
//	}
type jsonQuery struct {
	Explain string     `json:"explain,omitempty"` // "", "plan", "analyze"
	Select  string     `json:"select"`            // top | ranked | all | count
	K       int        `json:"k,omitempty"`
	Near    []float64  `json:"near,omitempty"` // [x, y]
	Match   *jsonExpr  `json:"match,omitempty"`
	Where   *jsonWhere `json:"where,omitempty"`
	Within  []float64  `json:"within,omitempty"` // [lox, loy, hix, hiy]
	Using   string     `json:"using,omitempty"`
}

// jsonExpr is one boolean-tree node; exactly one field may be set.
type jsonExpr struct {
	Term string     `json:"term,omitempty"`
	And  []jsonExpr `json:"and,omitempty"`
	Or   []jsonExpr `json:"or,omitempty"`
	Not  *jsonExpr  `json:"not,omitempty"`
}

type jsonWhere struct {
	ScoreGT *float64 `json:"score_gt,omitempty"`
	ScoreGE *float64 `json:"score_ge,omitempty"`
}

// ParseJSON parses the structured-JSON query form into the same typed
// AST produced by Parse. Unknown fields are rejected.
func ParseJSON(data []byte) (*Query, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var jq jsonQuery
	if err := dec.Decode(&jq); err != nil {
		return nil, fmt.Errorf("skql: bad json query: %w", err)
	}
	q := &Query{}
	switch jq.Explain {
	case "":
	case "plan":
		q.Explain = true
	case "analyze":
		q.Explain, q.Analyze = true, true
	default:
		return nil, fmt.Errorf("skql: bad json query: explain must be \"plan\" or \"analyze\", got %q", jq.Explain)
	}
	switch jq.Select {
	case "top":
		q.Proj = ProjTop
	case "ranked":
		q.Proj = ProjRanked
	case "all":
		q.Proj = ProjAll
	case "count":
		q.Proj = ProjCount
	default:
		return nil, fmt.Errorf("skql: bad json query: select must be top, ranked, all, or count, got %q", jq.Select)
	}
	if q.Proj == ProjTop || q.Proj == ProjRanked {
		if jq.K < 1 || jq.K > maxK {
			return nil, fmt.Errorf("skql: bad json query: k must be in [1, %d], got %d", maxK, jq.K)
		}
		q.K = jq.K
	} else if jq.K != 0 {
		return nil, fmt.Errorf("skql: bad json query: k is only valid with select top or ranked")
	}
	if jq.Near != nil {
		if len(jq.Near) != 2 || !finiteAll(jq.Near) {
			return nil, fmt.Errorf("skql: bad json query: near must be [x, y] with finite coordinates")
		}
		q.Near = []float64{jq.Near[0], jq.Near[1]}
	}
	if jq.Match != nil {
		e, err := jq.Match.toExpr(0)
		if err != nil {
			return nil, err
		}
		q.Match = e
	}
	if jq.Where != nil {
		switch {
		case jq.Where.ScoreGT != nil && jq.Where.ScoreGE == nil:
			q.Where = &ScoreFilter{Op: CmpGT, Value: *jq.Where.ScoreGT}
		case jq.Where.ScoreGE != nil && jq.Where.ScoreGT == nil:
			q.Where = &ScoreFilter{Op: CmpGE, Value: *jq.Where.ScoreGE}
		default:
			return nil, fmt.Errorf("skql: bad json query: where must set exactly one of score_gt, score_ge")
		}
		if math.IsNaN(q.Where.Value) || math.IsInf(q.Where.Value, 0) {
			return nil, fmt.Errorf("skql: bad json query: score threshold must be finite")
		}
	}
	if jq.Within != nil {
		if len(jq.Within) != 4 || !finiteAll(jq.Within) {
			return nil, fmt.Errorf("skql: bad json query: within must be [lox, loy, hix, hiy] with finite coordinates")
		}
		q.Within = &Rect{
			Lo: [2]float64{jq.Within[0], jq.Within[1]},
			Hi: [2]float64{jq.Within[2], jq.Within[3]},
		}
	}
	switch jq.Using {
	case "", "auto":
		q.Force = PathAuto
	case "ir2":
		q.Force = PathIR2
	case "iio":
		q.Force = PathIIO
	case "rtree":
		q.Force = PathRTree
	default:
		return nil, fmt.Errorf("skql: bad json query: unknown access path %q", jq.Using)
	}
	return q, nil
}

func finiteAll(vs []float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func (je *jsonExpr) toExpr(depth int) (Expr, error) {
	if depth > maxExprDepth {
		return nil, fmt.Errorf("skql: bad json query: match tree nested too deeply (limit %d)", maxExprDepth)
	}
	set := 0
	if je.Term != "" {
		set++
	}
	if len(je.And) > 0 {
		set++
	}
	if len(je.Or) > 0 {
		set++
	}
	if je.Not != nil {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("skql: bad json query: match node must set exactly one of term, and, or, not")
	}
	switch {
	case je.Term != "":
		return Term{Word: je.Term}, nil
	case je.Not != nil:
		x, err := je.Not.toExpr(depth + 1)
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	case len(je.And) > 0:
		kids, err := toExprs(je.And, depth+1)
		if err != nil {
			return nil, err
		}
		if len(kids) == 1 {
			return kids[0], nil
		}
		return And{Kids: kids}, nil
	default:
		kids, err := toExprs(je.Or, depth+1)
		if err != nil {
			return nil, err
		}
		if len(kids) == 1 {
			return kids[0], nil
		}
		return Or{Kids: kids}, nil
	}
}

func toExprs(nodes []jsonExpr, depth int) ([]Expr, error) {
	out := make([]Expr, 0, len(nodes))
	for i := range nodes {
		e, err := nodes[i].toExpr(depth)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// MarshalJSON renders the query in the structured-JSON form, the
// inverse of ParseJSON.
func (q *Query) MarshalJSON() ([]byte, error) {
	jq := jsonQuery{K: q.K}
	if q.Explain {
		jq.Explain = "plan"
		if q.Analyze {
			jq.Explain = "analyze"
		}
	}
	switch q.Proj {
	case ProjTop:
		jq.Select = "top"
	case ProjRanked:
		jq.Select = "ranked"
	case ProjAll:
		jq.Select = "all"
	case ProjCount:
		jq.Select = "count"
	}
	if q.Near != nil {
		jq.Near = q.Near
	}
	if q.Match != nil {
		jq.Match = toJSONExpr(q.Match)
	}
	if q.Where != nil {
		v := q.Where.Value
		jq.Where = &jsonWhere{}
		if q.Where.Op == CmpGE {
			jq.Where.ScoreGE = &v
		} else {
			jq.Where.ScoreGT = &v
		}
	}
	if q.Within != nil {
		jq.Within = []float64{q.Within.Lo[0], q.Within.Lo[1], q.Within.Hi[0], q.Within.Hi[1]}
	}
	if q.Force != PathAuto {
		jq.Using = q.Force.String()
	}
	return json.Marshal(jq)
}

func toJSONExpr(e Expr) *jsonExpr {
	switch n := e.(type) {
	case Term:
		return &jsonExpr{Term: n.Word}
	case Not:
		return &jsonExpr{Not: toJSONExpr(n.X)}
	case And:
		kids := make([]jsonExpr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = *toJSONExpr(k)
		}
		return &jsonExpr{And: kids}
	case Or:
		kids := make([]jsonExpr, len(n.Kids))
		for i, k := range n.Kids {
			kids[i] = *toJSONExpr(k)
		}
		return &jsonExpr{Or: kids}
	}
	return nil
}
