package skql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokWord
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokGT
	tokGE
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokWord:
		return "word"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	}
	return "?"
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokKind
	text string // word spelling, unquoted string value, or number text
	pos  int
}

// ParseError reports a lexical or syntactic error with its byte
// offset in the query text.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("skql: parse error at offset %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer splits query text into tokens. It never panics: malformed
// input yields a *ParseError.
type lexer struct {
	src string
	off int
}

func isWordRune(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isNumberStart(b byte) bool {
	return b >= '0' && b <= '9' || b == '-' || b == '+' || b == '.'
}

// next returns the next token, advancing the lexer.
func (lx *lexer) next() (token, error) {
	for lx.off < len(lx.src) {
		if c := lx.src[lx.off]; c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.off++
			continue
		}
		break
	}
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.off}, nil
	}
	start := lx.off
	switch c := lx.src[lx.off]; {
	case c == '(':
		lx.off++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		lx.off++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		lx.off++
		return token{kind: tokComma, pos: start}, nil
	case c == '>':
		lx.off++
		if lx.off < len(lx.src) && lx.src[lx.off] == '=' {
			lx.off++
			return token{kind: tokGE, pos: start}, nil
		}
		return token{kind: tokGT, pos: start}, nil
	case c == '"':
		return lx.lexString()
	case isNumberStart(c):
		return lx.lexNumber()
	default:
		r, size := utf8.DecodeRuneInString(lx.src[lx.off:])
		if !isWordRune(r) {
			return token{}, errAt(start, "unexpected character %q", r)
		}
		for lx.off < len(lx.src) {
			r, size = utf8.DecodeRuneInString(lx.src[lx.off:])
			if !isWordRune(r) {
				break
			}
			lx.off += size
		}
		return token{kind: tokWord, text: lx.src[start:lx.off], pos: start}, nil
	}
}

// lexString scans a double-quoted string with Go escape syntax.
func (lx *lexer) lexString() (token, error) {
	start := lx.off
	lx.off++ // opening quote
	for lx.off < len(lx.src) {
		switch lx.src[lx.off] {
		case '\\':
			lx.off += 2 // skip escaped char; bounds rechecked by loop
		case '"':
			lx.off++
			raw := lx.src[start:lx.off]
			val, err := strconv.Unquote(raw)
			if err != nil {
				return token{}, errAt(start, "bad string literal %s", raw)
			}
			return token{kind: tokString, text: val, pos: start}, nil
		case '\n':
			return token{}, errAt(start, "newline in string literal")
		default:
			lx.off++
		}
	}
	return token{}, errAt(start, "unterminated string literal")
}

// lexNumber scans a signed decimal number with optional fraction and
// exponent. strconv.ParseFloat is the final validity check.
func (lx *lexer) lexNumber() (token, error) {
	start := lx.off
	if c := lx.src[lx.off]; c == '-' || c == '+' {
		lx.off++
	}
	digits := func() int {
		n := 0
		for lx.off < len(lx.src) && lx.src[lx.off] >= '0' && lx.src[lx.off] <= '9' {
			lx.off++
			n++
		}
		return n
	}
	n := digits()
	if lx.off < len(lx.src) && lx.src[lx.off] == '.' {
		lx.off++
		n += digits()
	}
	if n == 0 {
		return token{}, errAt(start, "malformed number %q", lx.src[start:lx.off])
	}
	if lx.off < len(lx.src) && (lx.src[lx.off] == 'e' || lx.src[lx.off] == 'E') {
		lx.off++
		if lx.off < len(lx.src) && (lx.src[lx.off] == '-' || lx.src[lx.off] == '+') {
			lx.off++
		}
		if digits() == 0 {
			return token{}, errAt(start, "malformed exponent in %q", lx.src[start:lx.off])
		}
	}
	text := lx.src[start:lx.off]
	if _, err := strconv.ParseFloat(text, 64); err != nil {
		return token{}, errAt(start, "malformed number %q", text)
	}
	return token{kind: tokNumber, text: text, pos: start}, nil
}

// isKeyword reports whether a word token spells the given language
// keyword, case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokWord && strings.EqualFold(t.text, kw)
}

// reservedWords are language keywords a bare word term may not shadow;
// quoted terms are always literal.
var reservedWords = []string{
	"explain", "analyze", "select", "top", "ranked", "all", "count",
	"near", "match", "and", "or", "not", "where", "score", "within",
	"rect", "using",
}

func isReserved(word string) bool {
	for _, kw := range reservedWords {
		if strings.EqualFold(word, kw) {
			return true
		}
	}
	return false
}
