package skql

import (
	"fmt"
	"sort"
	"strings"

	"spatialkeyword/internal/textutil"
)

// DefaultMaxBranches caps how many conjunctive branches a DNF split
// may produce before the planner falls back to a single filter-scan.
const DefaultMaxBranches = 8

// Conj is one conjunctive DNF branch: every Pos term must appear in
// the object text and no Neg term may. Both slices are sorted and
// deduplicated.
type Conj struct {
	Pos []string
	Neg []string
}

func (c Conj) key() string {
	return strings.Join(c.Pos, "\x00") + "\x01" + strings.Join(c.Neg, "\x00")
}

// normalizeTree rewrites every Term through the analyzer so tree
// terms compare equal to indexed tokens. A keyword that dissolves
// under the analyzer (stopword, punctuation-only) is an error: it can
// never match and silently dropping it would change semantics.
func normalizeTree(e Expr, an *textutil.Analyzer) (Expr, error) {
	switch n := e.(type) {
	case Term:
		w := an.Keyword(n.Word)
		if w == "" {
			return nil, fmt.Errorf("skql: keyword %q dissolves under the text analyzer", n.Word)
		}
		return Term{Word: w}, nil
	case Not:
		x, err := normalizeTree(n.X, an)
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	case And:
		kids, err := normalizeKids(n.Kids, an)
		if err != nil {
			return nil, err
		}
		return And{Kids: kids}, nil
	case Or:
		kids, err := normalizeKids(n.Kids, an)
		if err != nil {
			return nil, err
		}
		return Or{Kids: kids}, nil
	}
	return nil, fmt.Errorf("skql: unknown expression node %T", e)
}

func normalizeKids(kids []Expr, an *textutil.Analyzer) ([]Expr, error) {
	out := make([]Expr, len(kids))
	for i, k := range kids {
		nk, err := normalizeTree(k, an)
		if err != nil {
			return nil, err
		}
		out[i] = nk
	}
	return out, nil
}

// nnf pushes negations down to the leaves (De Morgan) and flattens
// nested And/Or chains. The result contains Not only directly above
// Term.
func nnf(e Expr, neg bool) Expr {
	switch n := e.(type) {
	case Term:
		if neg {
			return Not{X: n}
		}
		return n
	case Not:
		return nnf(n.X, !neg)
	case And:
		kids := flattenNNF(n.Kids, neg)
		if neg {
			return orOf(kids)
		}
		return andOf(kids)
	case Or:
		kids := flattenNNF(n.Kids, neg)
		if neg {
			return andOf(kids)
		}
		return orOf(kids)
	}
	return e
}

func flattenNNF(kids []Expr, neg bool) []Expr {
	out := make([]Expr, 0, len(kids))
	for _, k := range kids {
		out = append(out, nnf(k, neg))
	}
	return out
}

// andOf builds a flattened And, collapsing single-child chains.
func andOf(kids []Expr) Expr {
	flat := make([]Expr, 0, len(kids))
	for _, k := range kids {
		if a, ok := k.(And); ok {
			flat = append(flat, a.Kids...)
		} else {
			flat = append(flat, k)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return And{Kids: flat}
}

// orOf builds a flattened Or, collapsing single-child chains.
func orOf(kids []Expr) Expr {
	flat := make([]Expr, 0, len(kids))
	for _, k := range kids {
		if o, ok := k.(Or); ok {
			flat = append(flat, o.Kids...)
		} else {
			flat = append(flat, k)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Or{Kids: flat}
}

// dnfSplit rewrites an NNF tree into disjunctive normal form. It
// returns (branches, true) when the tree fits within maxBranches
// conjunctive branches, or (nil, false) when distribution would
// explode past the cap. Contradictory branches (a term both required
// and negated) and exact duplicates are dropped, so an empty branch
// list with ok=true means the query matches nothing.
func dnfSplit(e Expr, maxBranches int) ([]Conj, bool) {
	branches, ok := dnfNode(e, maxBranches)
	if !ok {
		return nil, false
	}
	out := branches[:0]
	seen := make(map[string]bool, len(branches))
	for _, b := range branches {
		b.Pos = sortDedup(b.Pos)
		b.Neg = sortDedup(b.Neg)
		if intersects(b.Pos, b.Neg) {
			continue // contradiction: matches nothing
		}
		if k := b.key(); !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	return out, true
}

func dnfNode(e Expr, maxBranches int) ([]Conj, bool) {
	switch n := e.(type) {
	case Term:
		return []Conj{{Pos: []string{n.Word}}}, true
	case Not:
		t, ok := n.X.(Term)
		if !ok {
			return nil, false // not NNF; refuse rather than mis-split
		}
		return []Conj{{Neg: []string{t.Word}}}, true
	case Or:
		var out []Conj
		for _, k := range n.Kids {
			bs, ok := dnfNode(k, maxBranches)
			if !ok {
				return nil, false
			}
			out = append(out, bs...)
			if len(out) > maxBranches {
				return nil, false
			}
		}
		return out, true
	case And:
		out := []Conj{{}}
		for _, k := range n.Kids {
			bs, ok := dnfNode(k, maxBranches)
			if !ok {
				return nil, false
			}
			next := make([]Conj, 0, len(out)*len(bs))
			for _, a := range out {
				for _, b := range bs {
					next = append(next, Conj{
						Pos: append(append([]string{}, a.Pos...), b.Pos...),
						Neg: append(append([]string{}, a.Neg...), b.Neg...),
					})
					if len(next) > maxBranches {
						return nil, false
					}
				}
			}
			out = next
		}
		return out, true
	}
	return nil, false
}

func sortDedup(ss []string) []string {
	if len(ss) < 2 {
		return ss
	}
	sort.Strings(ss)
	out := ss[:1]
	for _, s := range ss[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func intersects(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// commonConjuncts returns the positive terms shared by every branch —
// safe to push into the engine query for signature pruning — and, for
// convenience, whether any branch has no positive term at all (which
// rules out the IR² and IIO paths for that branch).
func commonConjuncts(branches []Conj) []string {
	if len(branches) == 0 {
		return nil
	}
	common := append([]string{}, branches[0].Pos...)
	for _, b := range branches[1:] {
		kept := common[:0]
		for _, t := range common {
			if containsSorted(b.Pos, t) {
				kept = append(kept, t)
			}
		}
		common = kept
		if len(common) == 0 {
			return nil
		}
	}
	return common
}

func containsSorted(ss []string, t string) bool {
	i := sort.SearchStrings(ss, t)
	return i < len(ss) && ss[i] == t
}

// evalExpr evaluates a boolean tree (any shape, not just NNF) against
// a term-membership predicate. This is the brute-force semantics the
// oracle tests compare against.
func evalExpr(e Expr, has func(string) bool) bool {
	switch n := e.(type) {
	case Term:
		return has(n.Word)
	case Not:
		return !evalExpr(n.X, has)
	case And:
		for _, k := range n.Kids {
			if !evalExpr(k, has) {
				return false
			}
		}
		return true
	case Or:
		for _, k := range n.Kids {
			if evalExpr(k, has) {
				return true
			}
		}
		return false
	}
	return false
}

// matchesConj reports whether a term set satisfies one DNF branch.
func matchesConj(c Conj, has func(string) bool) bool {
	for _, t := range c.Pos {
		if !has(t) {
			return false
		}
	}
	for _, t := range c.Neg {
		if has(t) {
			return false
		}
	}
	return true
}

// selectivityExpr estimates the fraction of documents matching the
// tree under the paper's term-independence assumption: terms are
// independent Bernoulli events with probability df/N.
func selectivityExpr(e Expr, sel func(term string) float64) float64 {
	switch n := e.(type) {
	case Term:
		return sel(n.Word)
	case Not:
		return 1 - selectivityExpr(n.X, sel)
	case And:
		p := 1.0
		for _, k := range n.Kids {
			p *= selectivityExpr(k, sel)
		}
		return p
	case Or:
		q := 1.0
		for _, k := range n.Kids {
			q *= 1 - selectivityExpr(k, sel)
		}
		return 1 - q
	}
	return 0
}

// positiveTerms collects the distinct positive (non-negated) terms of
// an NNF tree in first-appearance order. RANKED projections score
// against these.
func positiveTerms(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr, bool)
	walk = func(e Expr, neg bool) {
		switch n := e.(type) {
		case Term:
			if !neg && !seen[n.Word] {
				seen[n.Word] = true
				out = append(out, n.Word)
			}
		case Not:
			walk(n.X, !neg)
		case And:
			for _, k := range n.Kids {
				walk(k, neg)
			}
		case Or:
			for _, k := range n.Kids {
				walk(k, neg)
			}
		}
	}
	walk(e, false)
	return out
}
