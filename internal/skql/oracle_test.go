package skql

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/repl"
	"spatialkeyword/internal/shard"
)

// genText builds object texts with controlled document frequencies:
// "base" everywhere, "com*" in ~80% of docs, "mid*" in ~10%, and each
// "rare*" in exactly two docs.
func genText(rng *rand.Rand, i, n int) string {
	words := []string{"base"}
	for c := 0; c < 2; c++ {
		if rng.Float64() < 0.8 {
			words = append(words, fmt.Sprintf("com%d", c))
		}
	}
	for m := 0; m < 4; m++ {
		if rng.Float64() < 0.1 {
			words = append(words, fmt.Sprintf("mid%d", m))
		}
	}
	// rare words: rare<j> lives in docs 2j and 2j+1 (when in range)
	if i/2 < 8 {
		words = append(words, fmt.Sprintf("rare%d", i/2))
	}
	return strings.Join(words, " ")
}

// genPoint draws continuous coordinates so distance ties cannot occur.
func genPoint(rng *rand.Rand) []float64 {
	return []float64{rng.Float64() * 100, rng.Float64() * 100}
}

// oracleMatch answers a query by brute force over the target: scan
// every live object, evaluate the boolean tree on its analyzed term
// set, and apply the projection semantics directly.
type oracleRow struct {
	obj  spatialkeyword.Object
	dist float64
}

func oracleRows(t *testing.T, c *Catalog, q *Query) []oracleRow {
	t.Helper()
	var tree Expr
	if q.Match != nil {
		var err error
		tree, err = normalizeTree(q.Match, c.Analyzer)
		if err != nil {
			t.Fatalf("normalizeTree: %v", err)
		}
	}
	var near geo.Point
	if q.Near != nil {
		near = geo.NewPoint(q.Near...)
	}
	var rect geo.Rect
	if q.Within != nil {
		rect = geo.NewRect(geo.NewPoint(q.Within.Lo[:]...), geo.NewPoint(q.Within.Hi[:]...))
	}
	var rows []oracleRow
	err := c.Target().Scan(func(o spatialkeyword.Object) error {
		if c.Target().IsDeleted(o.ID) {
			return nil
		}
		set := termSet(c.Analyzer.Unique(o.Text))
		if tree != nil && !evalExpr(tree, func(w string) bool { return set[w] }) {
			return nil
		}
		pt := geo.NewPoint(o.Point...)
		switch q.Proj {
		case ProjAll, ProjCount:
			if !rect.ContainsPoint(pt) {
				return nil
			}
			rows = append(rows, oracleRow{obj: o})
		default: // ProjTop
			if q.Near != nil && q.Within != nil && !rect.ContainsPoint(pt) {
				return nil
			}
			var d float64
			if q.Near != nil {
				d = near.Dist(pt)
			} else {
				d = rect.MinDist(pt)
			}
			rows = append(rows, oracleRow{obj: o, dist: d})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("oracle scan: %v", err)
	}
	switch q.Proj {
	case ProjAll, ProjCount:
		sort.Slice(rows, func(i, j int) bool { return rows[i].obj.ID < rows[j].obj.ID })
	default:
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].dist != rows[j].dist {
				return rows[i].dist < rows[j].dist
			}
			return rows[i].obj.ID < rows[j].obj.ID
		})
		if q.K > 0 && len(rows) > q.K {
			rows = rows[:q.K]
		}
	}
	return rows
}

// checkResults compares executed results to the oracle byte-exactly:
// SKQL's TOP semantics are deterministic (distance order, ties at the
// k-th distance broken by smallest ID), so order, IDs, and distances
// must all match — including for TOP ... WITHIN alone, where every
// object inside the rect ties at distance zero.
func checkResults(t *testing.T, label string, q *Query, got []spatialkeyword.Result, want []oracleRow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, oracle %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Object.ID != want[i].obj.ID {
			t.Fatalf("%s: result %d ID = %d, oracle %d", label, i, got[i].Object.ID, want[i].obj.ID)
		}
		wd := want[i].dist
		if q.Proj == ProjAll {
			wd = 0
		}
		if got[i].Dist != wd {
			t.Fatalf("%s: result %d dist = %v, oracle %v", label, i, got[i].Dist, wd)
		}
	}
}

// runOracleSuite drives the full randomized suite against one target.
func runOracleSuite(t *testing.T, c *Catalog, rng *rand.Rand) {
	t.Helper()
	matches := []string{
		``,
		`MATCH "rare0"`,
		`MATCH "com0"`,
		`MATCH "base"`,
		`MATCH "nosuchword"`,
		`MATCH "mid0" AND "com0"`,
		`MATCH "rare1" OR "rare2"`,
		`MATCH "com0" AND NOT "mid1"`,
		`MATCH NOT "com0"`,
		`MATCH ("rare3" AND "com1") OR ("mid2" AND NOT "com0")`,
		`MATCH "mid0" OR ("com1" AND NOT "rare4")`,
		`MATCH "rare5" AND "rare5"`,
		`MATCH "com0" AND NOT "com0"`,
	}
	for qi, m := range matches {
		p := genPoint(rng)
		lo := genPoint(rng)
		hi := []float64{lo[0] + 30, lo[1] + 30}
		k := 1 + rng.Intn(9)
		forms := []string{
			fmt.Sprintf("SELECT TOP %d NEAR (%v, %v) %s", k, p[0], p[1], m),
			fmt.Sprintf("SELECT TOP %d WITHIN rect(%v, %v, %v, %v) %s", k, lo[0], lo[1], hi[0], hi[1], m),
			fmt.Sprintf("SELECT TOP %d NEAR (%v, %v) WITHIN rect(%v, %v, %v, %v) %s", k, p[0], p[1], lo[0], lo[1], hi[0], hi[1], m),
			fmt.Sprintf("SELECT ALL WITHIN rect(%v, %v, %v, %v) %s", lo[0], lo[1], hi[0], hi[1], m),
			fmt.Sprintf("SELECT COUNT WITHIN rect(%v, %v, %v, %v) %s", lo[0], lo[1], hi[0], hi[1], m),
		}
		for fi, src := range forms {
			q, err := Parse(src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", src, err)
			}
			want := oracleRows(t, c, q)
			for _, force := range []string{"", " USING ir2", " USING iio", " USING rtree"} {
				fq, err := Parse(src + force)
				if err != nil {
					t.Fatalf("Parse(%q): %v", src+force, err)
				}
				rs, err := c.Run(fq)
				if err != nil {
					if force == " USING iio" && strings.Contains(err.Error(), "USING iio requires") {
						continue // iio genuinely cannot run keyword-free plans
					}
					t.Fatalf("Run(%q): %v", src+force, err)
				}
				label := fmt.Sprintf("q%d form%d%s", qi, fi, force)
				if q.Proj == ProjCount {
					if rs.Count != len(want) {
						t.Fatalf("%s: count = %d, oracle %d", label, rs.Count, len(want))
					}
					continue
				}
				checkResults(t, label, q, rs.Results, want)
			}
			// EXPLAIN ANALYZE executes too and must agree.
			aq, err := Parse("EXPLAIN ANALYZE " + src)
			if err != nil {
				t.Fatalf("Parse explain: %v", err)
			}
			rs, err := c.Run(aq)
			if err != nil {
				t.Fatalf("Run(EXPLAIN ANALYZE %q): %v", src, err)
			}
			if len(rs.Explain) == 0 {
				t.Fatalf("EXPLAIN ANALYZE produced no output for %q", src)
			}
			if q.Proj != ProjCount {
				checkResults(t, fmt.Sprintf("q%d form%d analyze", qi, fi), q, rs.Results, want)
			}
		}
	}
}

// runRankedSuite checks RANKED projections against the target's own
// TopKRanked as the oracle: fetch everything, filter by the boolean
// tree, truncate to k.
func runRankedSuite(t *testing.T, c *Catalog, rng *rand.Rand) {
	t.Helper()
	cases := []struct {
		match string
		terms []string
	}{
		{`MATCH "com0"`, []string{"com0"}},
		{`MATCH "com0" OR "mid1"`, []string{"com0", "mid1"}},
		{`MATCH ("com0" OR "mid1") AND NOT "rare0"`, []string{"com0", "mid1"}},
	}
	n := c.Target().NumObjects()
	for ci, tc := range cases {
		p := genPoint(rng)
		k := 2 + rng.Intn(5)
		src := fmt.Sprintf("SELECT RANKED %d NEAR (%v, %v) %s", k, p[0], p[1], tc.match)
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		rs, err := c.Run(q)
		if err != nil {
			t.Fatalf("Run(%q): %v", src, err)
		}
		all, err := c.Target().TopKRanked(n+1, p, tc.terms...)
		if err != nil {
			t.Fatalf("TopKRanked oracle: %v", err)
		}
		tree, err := normalizeTree(q.Match, c.Analyzer)
		if err != nil {
			t.Fatalf("normalizeTree: %v", err)
		}
		var want []spatialkeyword.RankedResult
		for _, r := range all {
			set := termSet(c.Analyzer.Unique(r.Object.Text))
			if !evalExpr(tree, func(w string) bool { return set[w] }) {
				continue
			}
			want = append(want, r)
			if len(want) == k {
				break
			}
		}
		if len(rs.Ranked) != len(want) {
			t.Fatalf("ranked case %d: got %d results, oracle %d", ci, len(rs.Ranked), len(want))
		}
		for i := range want {
			if rs.Ranked[i].Object.ID != want[i].Object.ID || rs.Ranked[i].Score != want[i].Score {
				t.Fatalf("ranked case %d result %d: got ID %d score %v, oracle ID %d score %v",
					ci, i, rs.Ranked[i].Object.ID, rs.Ranked[i].Score, want[i].Object.ID, want[i].Score)
			}
		}
	}
}

func fillTarget(t *testing.T, add func(point []float64, text string) (uint64, error), rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := add(genPoint(rng), genText(rng, i, n)); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
}

func TestOracleEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, err := spatialkeyword.NewEngine(spatialkeyword.Config{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	fillTarget(t, e.Add, rng, 150)
	if err := e.Delete(5); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := e.Delete(60); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	c := NewCatalog(e)
	runOracleSuite(t, c, rng)
	runRankedSuite(t, c, rng)
}

func TestOracleShardedEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s, err := shard.New(spatialkeyword.Config{}, shard.Options{Shards: 3})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	fillTarget(t, s.Add, rng, 120)
	if err := s.Delete(9); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	c := NewCatalog(s)
	runOracleSuite(t, c, rng)
	runRankedSuite(t, c, rng)
}

func TestOracleReplicatedFollower(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ldir, fdir := t.TempDir(), t.TempDir()
	e, err := spatialkeyword.NewDurableEngine(spatialkeyword.Config{WAL: true}, ldir)
	if err != nil {
		t.Fatalf("NewDurableEngine: %v", err)
	}
	defer e.Close() //nolint:errcheck // test teardown
	l := repl.NewLeader(ldir)
	l.AttachEngine(e)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	fillTarget(t, e.Add, rng, 80)
	if err := e.Delete(4); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	f, err := repl.OpenFollower(fdir, srv.URL, repl.Options{
		PollWait: 50 * time.Millisecond, RetryInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	if err := f.WaitFor(l.PositionToken(), 10*time.Second); err != nil {
		t.Fatalf("WaitFor: %v", err)
	}

	c := NewCatalog(f)
	runOracleSuite(t, c, rng)
	runRankedSuite(t, c, rng)
}
