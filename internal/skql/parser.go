package skql

import (
	"math"
	"strconv"
	"strings"
)

// maxK bounds TOP/RANKED k so a query cannot demand an absurd fetch.
const maxK = 1_000_000

// maxExprDepth bounds parser recursion (parenthesis and NOT nesting)
// so adversarial input cannot overflow the stack.
const maxExprDepth = 200

// Parse parses one SKQL statement into its typed AST. It never
// panics; malformed input yields a *ParseError.
func Parse(src string) (*Query, error) {
	p := &parser{lx: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.pos, "unexpected %s after query", p.tok.kind)
	}
	return q, nil
}

type parser struct {
	lx    lexer
	tok   token // current lookahead
	depth int
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// eatKeyword consumes the current token if it spells kw.
func (p *parser) eatKeyword(kw string) (bool, error) {
	if !p.tok.isKeyword(kw) {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	ok, err := p.eatKeyword(kw)
	if err != nil {
		return err
	}
	if !ok {
		return errAt(p.tok.pos, "expected %s, found %s", strings.ToUpper(kw), p.describe())
	}
	return nil
}

func (p *parser) expect(kind tokKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, errAt(p.tok.pos, "expected %s, found %s", kind, p.describe())
	}
	t := p.tok
	return t, p.advance()
}

// describe renders the lookahead token for error messages.
func (p *parser) describe() string {
	switch p.tok.kind {
	case tokWord:
		return strconv.Quote(p.tok.text)
	case tokString:
		return "string " + strconv.Quote(p.tok.text)
	case tokNumber:
		return "number " + p.tok.text
	default:
		return p.tok.kind.String()
	}
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	explain, err := p.eatKeyword("explain")
	if err != nil {
		return nil, err
	}
	if explain {
		q.Explain = true
		if q.Analyze, err = p.eatKeyword("analyze"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.parseProjection(q); err != nil {
		return nil, err
	}

	seen := map[string]bool{}
	for {
		var clause string
		switch {
		case p.tok.isKeyword("near"):
			clause = "NEAR"
		case p.tok.isKeyword("match"):
			clause = "MATCH"
		case p.tok.isKeyword("where"):
			clause = "WHERE"
		case p.tok.isKeyword("within"):
			clause = "WITHIN"
		case p.tok.isKeyword("using"):
			clause = "USING"
		default:
			return q, nil
		}
		if seen[clause] {
			return nil, errAt(p.tok.pos, "duplicate %s clause", clause)
		}
		seen[clause] = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		var perr error
		switch clause {
		case "NEAR":
			perr = p.parseNear(q)
		case "MATCH":
			q.Match, perr = p.parseOr()
		case "WHERE":
			perr = p.parseWhere(q)
		case "WITHIN":
			perr = p.parseWithin(q)
		case "USING":
			perr = p.parseUsing(q)
		}
		if perr != nil {
			return nil, perr
		}
	}
}

func (p *parser) parseProjection(q *Query) error {
	switch {
	case p.tok.isKeyword("top"):
		q.Proj = ProjTop
	case p.tok.isKeyword("ranked"):
		q.Proj = ProjRanked
	case p.tok.isKeyword("all"):
		q.Proj = ProjAll
	case p.tok.isKeyword("count"):
		q.Proj = ProjCount
	default:
		return errAt(p.tok.pos, "expected TOP, RANKED, ALL, or COUNT, found %s", p.describe())
	}
	if err := p.advance(); err != nil {
		return err
	}
	if q.Proj == ProjTop || q.Proj == ProjRanked {
		t, err := p.expect(tokNumber)
		if err != nil {
			return err
		}
		k, err := strconv.Atoi(t.text)
		if err != nil || k < 1 || k > maxK {
			return errAt(t.pos, "k must be an integer in [1, %d], got %q", maxK, t.text)
		}
		q.K = k
	}
	return nil
}

// parseFloat consumes a number token and rejects non-finite values
// (e.g. 1e999 overflows to +Inf, which would not round-trip).
func (p *parser) parseFloat() (float64, error) {
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, errAt(t.pos, "number %q out of range", t.text)
	}
	return v, nil
}

func (p *parser) parseNear(q *Query) error {
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	x, err := p.parseFloat()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	y, err := p.parseFloat()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	q.Near = []float64{x, y}
	return nil
}

func (p *parser) parseWhere(q *Query) error {
	if err := p.expectKeyword("score"); err != nil {
		return err
	}
	var op CmpOp
	switch p.tok.kind {
	case tokGT:
		op = CmpGT
	case tokGE:
		op = CmpGE
	default:
		return errAt(p.tok.pos, "expected '>' or '>=', found %s", p.describe())
	}
	if err := p.advance(); err != nil {
		return err
	}
	v, err := p.parseFloat()
	if err != nil {
		return err
	}
	q.Where = &ScoreFilter{Op: op, Value: v}
	return nil
}

func (p *parser) parseWithin(q *Query) error {
	if err := p.expectKeyword("rect"); err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var vals [4]float64
	for i := range vals {
		if i > 0 {
			if _, err := p.expect(tokComma); err != nil {
				return err
			}
		}
		v, err := p.parseFloat()
		if err != nil {
			return err
		}
		vals[i] = v
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	q.Within = &Rect{Lo: [2]float64{vals[0], vals[1]}, Hi: [2]float64{vals[2], vals[3]}}
	return nil
}

func (p *parser) parseUsing(q *Query) error {
	t, err := p.expect(tokWord)
	if err != nil {
		return err
	}
	switch strings.ToLower(t.text) {
	case "auto":
		q.Force = PathAuto
	case "ir2":
		q.Force = PathIR2
	case "iio":
		q.Force = PathIIO
	case "rtree":
		q.Force = PathRTree
	default:
		return errAt(t.pos, "unknown access path %q (want ir2, iio, rtree, or auto)", t.text)
	}
	return nil
}

// parseOr parses OR-chains: and-expr (OR and-expr)*.
func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	var kids []Expr
	for p.tok.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if kids == nil {
			kids = []Expr{left}
		}
		kids = append(kids, right)
	}
	if kids == nil {
		return left, nil
	}
	return Or{Kids: kids}, nil
}

// parseAnd parses AND-chains: unary (AND unary)*.
func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	var kids []Expr
	for p.tok.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if kids == nil {
			kids = []Expr{left}
		}
		kids = append(kids, right)
	}
	if kids == nil {
		return left, nil
	}
	return And{Kids: kids}, nil
}

// parseUnary parses NOT prefixes and primaries.
func (p *parser) parseUnary() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExprDepth {
		return nil, errAt(p.tok.pos, "expression nested too deeply (limit %d)", maxExprDepth)
	}
	if p.tok.isKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokString:
		t := p.tok
		if t.text == "" {
			return nil, errAt(t.pos, "empty keyword")
		}
		return Term{Word: t.text}, p.advance()
	case tokWord:
		t := p.tok
		if isReserved(t.text) {
			return nil, errAt(t.pos, "reserved word %q must be quoted to match as a keyword", t.text)
		}
		return Term{Word: t.text}, p.advance()
	default:
		return nil, errAt(p.tok.pos, "expected keyword or '(', found %s", p.describe())
	}
}
