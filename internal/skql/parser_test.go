package skql

import (
	"strings"
	"testing"
)

// TestParseCanonical checks parsing and canonical printing together:
// each input parses, prints as the expected canonical form, and that
// form re-parses to the same string (the round-trip fixpoint).
func TestParseCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT TOP 5 NEAR (1, 2)", `SELECT TOP 5 NEAR (1, 2)`},
		{"select top 5 near(1,2)", `SELECT TOP 5 NEAR (1, 2)`},
		{"SELECT TOP 10 NEAR (3.5, -7) MATCH pizza",
			`SELECT TOP 10 NEAR (3.5, -7) MATCH "pizza"`},
		{`SELECT TOP 10 NEAR (0, 0) MATCH "cafe" AND wifi OR "tea"`,
			`SELECT TOP 10 NEAR (0, 0) MATCH "cafe" AND "wifi" OR "tea"`},
		{`SELECT TOP 10 NEAR (0, 0) MATCH a AND (b OR c)`,
			`SELECT TOP 10 NEAR (0, 0) MATCH "a" AND ("b" OR "c")`},
		{`SELECT TOP 10 NEAR (0, 0) MATCH NOT (a OR b) AND c`,
			`SELECT TOP 10 NEAR (0, 0) MATCH NOT ("a" OR "b") AND "c"`},
		{`SELECT TOP 3 NEAR (0, 0) MATCH NOT NOT x`,
			`SELECT TOP 3 NEAR (0, 0) MATCH NOT (NOT "x")`},
		{`SELECT RANKED 7 NEAR (2, 2) MATCH beach WHERE score > 0.5`,
			`SELECT RANKED 7 NEAR (2, 2) MATCH "beach" WHERE score > 0.5`},
		{`SELECT RANKED 7 NEAR (2, 2) MATCH beach WHERE score >= 1`,
			`SELECT RANKED 7 NEAR (2, 2) MATCH "beach" WHERE score >= 1`},
		{`SELECT ALL WITHIN rect(0, 0, 10, 10) MATCH "a"`,
			`SELECT ALL MATCH "a" WITHIN rect(0, 0, 10, 10)`},
		{`SELECT COUNT WITHIN rect(-1.5, -2, 3, 4e2)`,
			`SELECT COUNT WITHIN rect(-1.5, -2, 3, 400)`},
		{`SELECT TOP 2 NEAR (1, 1) MATCH x USING iio`,
			`SELECT TOP 2 NEAR (1, 1) MATCH "x" USING iio`},
		{`SELECT TOP 2 NEAR (1, 1) USING auto`, `SELECT TOP 2 NEAR (1, 1)`},
		{`EXPLAIN SELECT TOP 2 NEAR (1, 1) MATCH x`,
			`EXPLAIN SELECT TOP 2 NEAR (1, 1) MATCH "x"`},
		{`explain analyze select top 2 near (1, 1) match x using rtree`,
			`EXPLAIN ANALYZE SELECT TOP 2 NEAR (1, 1) MATCH "x" USING rtree`},
		// Reserved words are fine when quoted; escapes work.
		{`SELECT TOP 1 NEAR (0, 0) MATCH "and" AND "select"`,
			`SELECT TOP 1 NEAR (0, 0) MATCH "and" AND "select"`},
		{`SELECT TOP 1 NEAR (0, 0) MATCH "café"`,
			`SELECT TOP 1 NEAR (0, 0) MATCH "café"`},
		// Clause order is free in input, canonical in output.
		{`SELECT TOP 4 USING ir2 MATCH m NEAR (9, 9)`,
			`SELECT TOP 4 NEAR (9, 9) MATCH "m" USING ir2`},
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		got := q.String()
		if got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
			continue
		}
		q2, err := Parse(got)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", got, err)
			continue
		}
		if got2 := q2.String(); got2 != got {
			t.Errorf("round trip not a fixpoint: %q -> %q", got, got2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"", "expected SELECT"},
		{"SELECT", "expected TOP, RANKED, ALL, or COUNT"},
		{"SELECT TOP", "expected number"},
		{"SELECT TOP 0 NEAR (1, 2)", "k must be an integer"},
		{"SELECT TOP -3 NEAR (1, 2)", "k must be an integer"},
		{"SELECT TOP 2.5 NEAR (1, 2)", "k must be an integer"},
		{"SELECT TOP 9999999999 NEAR (1, 2)", "k must be an integer"},
		{"SELECT TOP 5 NEAR (1)", "expected ','"},
		{"SELECT TOP 5 NEAR (1, 2) NEAR (3, 4)", "duplicate NEAR"},
		{"SELECT TOP 5 NEAR (1e999, 2)", "malformed number"},
		{"SELECT TOP 5 NEAR (1, 2) MATCH", "expected keyword or '('"},
		{"SELECT TOP 5 NEAR (1, 2) MATCH and", "reserved word"},
		{"SELECT TOP 5 NEAR (1, 2) MATCH select", "reserved word"},
		{`SELECT TOP 5 NEAR (1, 2) MATCH ""`, "empty keyword"},
		{`SELECT TOP 5 NEAR (1, 2) MATCH "unterminated`, "unterminated"},
		{"SELECT TOP 5 NEAR (1, 2) MATCH (a", "expected ')'"},
		{"SELECT TOP 5 NEAR (1, 2) MATCH a AND", "expected keyword or '('"},
		{"SELECT TOP 5 NEAR (1, 2) WHERE score", "expected '>' or '>='"},
		{"SELECT TOP 5 NEAR (1, 2) USING btree", "unknown access path"},
		{"SELECT ALL WITHIN rect(1, 2, 3)", "expected ','"},
		{"SELECT TOP 5 NEAR (1, 2) garbage", "unexpected"},
		{"SELECT TOP 5 NEAR (1, 2) MATCH " + strings.Repeat("NOT ", 300) + "x",
			"nested too deeply"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.in, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.in, err.Error(), c.wantSub)
		}
	}
}

// TestParseJSONEquivalence checks that the JSON form produces the same
// AST (via canonical string) as the text form, and that MarshalJSON
// round-trips through ParseJSON.
func TestParseJSONEquivalence(t *testing.T) {
	cases := []struct{ js, text string }{
		{`{"select":"top","k":5,"near":[1,2]}`, "SELECT TOP 5 NEAR (1, 2)"},
		{`{"select":"top","k":10,"near":[0,0],
		   "match":{"and":[{"term":"cafe"},{"or":[{"term":"wifi"},{"term":"tea"}]}]}}`,
			`SELECT TOP 10 NEAR (0, 0) MATCH "cafe" AND ("wifi" OR "tea")`},
		{`{"explain":"analyze","select":"ranked","k":3,"near":[2,2],
		   "match":{"term":"beach"},"where":{"score_gt":0.5}}`,
			`EXPLAIN ANALYZE SELECT RANKED 3 NEAR (2, 2) MATCH "beach" WHERE score > 0.5`},
		{`{"select":"count","within":[0,0,9,9],"match":{"not":{"term":"closed"}}}`,
			`SELECT COUNT MATCH NOT "closed" WITHIN rect(0, 0, 9, 9)`},
		{`{"select":"all","within":[0,0,9,9],"using":"iio","match":{"term":"x"}}`,
			`SELECT ALL MATCH "x" WITHIN rect(0, 0, 9, 9) USING iio`},
	}
	for _, c := range cases {
		jq, err := ParseJSON([]byte(c.js))
		if err != nil {
			t.Errorf("ParseJSON(%s): %v", c.js, err)
			continue
		}
		tq, err := Parse(c.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.text, err)
		}
		if jq.String() != tq.String() {
			t.Errorf("JSON and text disagree: %q vs %q", jq.String(), tq.String())
		}
		// Marshal and re-parse.
		data, err := jq.MarshalJSON()
		if err != nil {
			t.Errorf("MarshalJSON: %v", err)
			continue
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Errorf("ParseJSON(MarshalJSON()) = %v on %s", err, data)
			continue
		}
		if back.String() != jq.String() {
			t.Errorf("JSON round trip: %q -> %q", jq.String(), back.String())
		}
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []struct{ js, wantSub string }{
		{`{"select":"top","near":[1,2]}`, "k must be"},
		{`{"select":"all","k":3,"within":[0,0,1,1]}`, "k is only valid"},
		{`{"select":"nope"}`, "select must be"},
		{`{"select":"top","k":1,"near":[1]}`, "near must be"},
		{`{"select":"top","k":1,"near":[1,2],"bogus":true}`, "unknown field"},
		{`{"select":"top","k":1,"near":[1,2],"match":{}}`, "exactly one"},
		{`{"select":"top","k":1,"near":[1,2],
		   "match":{"term":"a","and":[{"term":"b"}]}}`, "exactly one"},
		{`{"select":"top","k":1,"near":[1,2],"where":{}}`, "exactly one of score_gt"},
		{`{"select":"top","k":1,"near":[1,2],"using":"hash"}`, "unknown access path"},
		{`{"select":"all","within":[0,0,1]}`, "within must be"},
	}
	for _, c := range cases {
		_, err := ParseJSON([]byte(c.js))
		if err == nil {
			t.Errorf("ParseJSON(%s): expected error containing %q, got nil", c.js, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseJSON(%s) error = %q, want substring %q", c.js, err.Error(), c.wantSub)
		}
	}
}
