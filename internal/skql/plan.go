package skql

import (
	"fmt"
)

// Merge describes how an executed plan's operator outputs combine.
type Merge int

const (
	// MergeDistance takes the k nearest across all operators,
	// deduplicated by object ID (distance ties by smallest ID).
	MergeDistance Merge = iota
	// MergeRanked takes the k best-scoring results of the single
	// ranked operator.
	MergeRanked
	// MergeUnion unions operator outputs by object ID, ordered by ID
	// (ALL projections).
	MergeUnion
	// MergeCount is MergeUnion reduced to its cardinality.
	MergeCount
)

// Operator is one physical operator: an engine-level query with a
// pushed-down conjunction plus residual filtering applied by the
// executor.
type Operator struct {
	// Path is the access path. The pushed Conj reaches the engine
	// only on PathIR2 (signature pruning) and PathIIO (posting-list
	// intersection); PathRTree runs the bare spatial query and
	// filters everything residually.
	Path Path
	// Conj are the positive terms this operator requires (normalized).
	Conj []string
	// Neg are negated terms filtered residually (normalized).
	Neg []string
	// Residual, when non-nil, is the full boolean tree the executor
	// re-checks on every candidate (used by single-scan operators;
	// DNF branch operators encode their predicate in Conj/Neg alone).
	Residual Expr
	// K is the per-operator fetch target (0 = unbounded, area scans).
	K int
	// Est is the cost model's verdict for this operator.
	Est PathEstimate
}

// requires reports whether the object's term set satisfies the
// operator's predicate (Conj+Neg and Residual).
func (op *Operator) requires(has func(string) bool) bool {
	for _, t := range op.Conj {
		if !has(t) {
			return false
		}
	}
	for _, t := range op.Neg {
		if has(t) {
			return false
		}
	}
	if op.Residual != nil && !evalExpr(op.Residual, has) {
		return false
	}
	return true
}

// Plan is a costed physical plan.
type Plan struct {
	// Query is the statement the plan answers.
	Query *Query
	// Tree is the analyzer-normalized boolean tree (nil: match all).
	Tree Expr
	// Common are the conjuncts shared by every DNF branch (pushed
	// into single-scan operators for signature pruning).
	Common []string
	// DNF reports that Ops are the branches of a DNF split, unioned
	// by the Merge; false means a single scan (or ranked) operator.
	DNF bool
	// Ops are the physical operators, executed independently.
	Ops []Operator
	// Merge combines the operator outputs.
	Merge Merge
	// In are the cost inputs the estimates were computed from.
	In CostInputs
	// EstBlocks and EstRows are the plan-total estimates.
	EstBlocks float64
	EstRows   float64
}

// validate enforces the semantic rules the grammar cannot.
func validate(q *Query) error {
	switch q.Proj {
	case ProjTop:
		if q.Near == nil && q.Within == nil {
			return fmt.Errorf("skql: SELECT TOP requires NEAR or WITHIN")
		}
	case ProjRanked:
		if q.Near == nil {
			return fmt.Errorf("skql: SELECT RANKED requires NEAR")
		}
		if q.Match == nil {
			return fmt.Errorf("skql: SELECT RANKED requires MATCH")
		}
		if q.Force != PathAuto {
			return fmt.Errorf("skql: SELECT RANKED always uses the scored traversal; drop USING %s", q.Force)
		}
	case ProjAll, ProjCount:
		if q.Within == nil {
			return fmt.Errorf("skql: SELECT %s requires WITHIN", q.Proj)
		}
		if q.Near != nil {
			return fmt.Errorf("skql: SELECT %s does not take NEAR (results are unordered by distance)", q.Proj)
		}
	}
	if q.Where != nil && q.Proj != ProjRanked {
		// The paper's Score > 0 reads as "matches the keyword
		// predicate", which every result of a boolean projection
		// already does; real thresholds need scored results.
		if q.Where.Op != CmpGT || q.Where.Value != 0 {
			return fmt.Errorf("skql: WHERE score %s %s requires SELECT RANKED (boolean projections only support the no-op score > 0)",
				q.Where.Op, formatFloat(q.Where.Value))
		}
	}
	if q.Within != nil {
		for d := 0; d < 2; d++ {
			if q.Within.Lo[d] > q.Within.Hi[d] {
				return fmt.Errorf("skql: inverted WITHIN rect on axis %d (%g > %g)", d, q.Within.Lo[d], q.Within.Hi[d])
			}
		}
	}
	return nil
}

// BuildPlan lowers a parsed query to a costed physical plan without
// executing it.
func (c *Catalog) BuildPlan(q *Query) (*Plan, error) {
	if err := validate(q); err != nil {
		return nil, err
	}
	// Flush buffered adds now: the cost model needs the built tree's
	// height, and the one-time indexing I/O must not be charged to the
	// first executed operator's EXPLAIN ANALYZE actuals.
	if err := c.flushTarget(); err != nil {
		return nil, err
	}
	in, err := c.costInputs()
	if err != nil {
		return nil, err
	}
	p := &Plan{Query: q, In: in}

	if q.Match != nil {
		tree, err := normalizeTree(q.Match, c.Analyzer)
		if err != nil {
			return nil, err
		}
		p.Tree = tree
	}

	switch q.Proj {
	case ProjRanked:
		err = c.planRanked(p)
	case ProjAll, ProjCount:
		err = c.planArea(p)
	default:
		err = c.planTop(p)
	}
	if err != nil {
		return nil, err
	}
	for _, op := range p.Ops {
		p.EstBlocks += op.Est.Blocks
		p.EstRows += op.Est.Rows
	}
	if q.Proj == ProjTop || q.Proj == ProjRanked {
		if kf := float64(q.K); p.EstRows > kf {
			p.EstRows = kf
		}
	}
	return p, nil
}

// selOf adapts CostInputs to the selectivity walker.
func selOf(in CostInputs) func(string) float64 {
	return in.TermSelectivity
}

func selConj(in CostInputs, terms []string) float64 {
	s := 1.0
	for _, t := range terms {
		s *= in.TermSelectivity(t)
	}
	return s
}

func negSel(in CostInputs, neg []string) float64 {
	s := 1.0
	for _, t := range neg {
		s *= 1 - in.TermSelectivity(t)
	}
	return s
}

// fullSelectivity is the estimated match fraction of the whole tree
// (1 when there is no MATCH clause).
func fullSelectivity(in CostInputs, tree Expr) float64 {
	if tree == nil {
		return 1
	}
	return clamp01(selectivityExpr(tree, selOf(in)))
}

// residualAfter returns the residual selectivity once the pushed
// conjuncts are accounted for: fullSel / sel(conj), clamped.
func residualAfter(fullSel, conjSel float64) float64 {
	if conjSel <= 0 {
		return 0
	}
	return clamp01(fullSel / conjSel)
}

// topAndPos extracts the positive top-level conjuncts of an NNF tree —
// the terms pushable into a single scan when a DNF split is off the
// table.
func topAndPos(e Expr) []string {
	switch n := e.(type) {
	case Term:
		return []string{n.Word}
	case And:
		var out []string
		for _, k := range n.Kids {
			if t, ok := k.(Term); ok {
				out = append(out, t.Word)
			}
		}
		return sortDedup(out)
	}
	return nil
}

// planTop plans a distance-first TOP k: a DNF branch union when the
// split is available and cheaper, otherwise a single scan with the
// common conjuncts pushed down.
func (c *Catalog) planTop(p *Plan) error {
	q := p.Query
	in := p.In
	p.Merge = MergeDistance

	if p.Tree == nil {
		// Pure spatial query: the IR²-Tree without keywords is a
		// plain R-Tree walk.
		if q.Force == PathIIO {
			return fmt.Errorf("skql: USING iio requires MATCH keywords (no posting lists to intersect)")
		}
		p.Ops = []Operator{{Path: PathRTree, K: q.K, Est: in.EstimateRTree(q.K, 1)}}
		return nil
	}

	nt := nnf(p.Tree, false)
	branches, dnfOK := dnfSplit(nt, c.maxBranches())
	fullSel := fullSelectivity(in, p.Tree)

	if dnfOK {
		p.Common = commonConjuncts(branches)
	} else {
		p.Common = topAndPos(nt)
	}

	// Candidate A: the DNF branch union.
	var branchOps []Operator
	branchesOK := dnfOK
	if dnfOK {
		if len(branches) == 0 {
			// Contradictory predicate: matches nothing.
			p.DNF = true
			p.Ops = nil
			return nil
		}
		for _, b := range branches {
			op, ok := branchOperator(in, q.K, b, q.Force)
			if !ok {
				branchesOK = false
				break
			}
			branchOps = append(branchOps, op)
		}
	}

	// Candidate B: one scan with the common conjuncts pushed down.
	scanOp := scanOperator(in, q.K, p.Common, p.Tree, fullSel, q.Force)

	switch q.Force {
	case PathIIO:
		if !branchesOK {
			return fmt.Errorf("skql: USING iio requires a conjunctive keyword tree (DNF split over %d branches failed or a branch has no positive keyword)", c.maxBranches())
		}
		p.DNF, p.Ops = true, branchOps
		return nil
	case PathRTree:
		p.Ops = []Operator{scanOp}
		return nil
	case PathIR2:
		if branchesOK {
			p.DNF, p.Ops = true, branchOps
		} else {
			p.Ops = []Operator{scanOp}
		}
		return nil
	}

	// Auto: cheaper total estimate wins.
	if branchesOK {
		var total float64
		for _, op := range branchOps {
			total += op.Est.Blocks
		}
		if total <= scanOp.Est.Blocks {
			p.DNF, p.Ops = true, branchOps
			return nil
		}
	}
	p.Ops = []Operator{scanOp}
	return nil
}

// branchOperator plans one DNF branch, honoring a forced path. ok is
// false when the forced path cannot run this branch (no positive term
// for IIO/IR2 pruning).
func branchOperator(in CostInputs, k int, b Conj, force Path) (Operator, bool) {
	op := Operator{Conj: b.Pos, Neg: b.Neg, K: k}
	rn := negSel(in, b.Neg)
	switch force {
	case PathIIO:
		if len(b.Pos) == 0 {
			return op, false
		}
		op.Path, op.Est = PathIIO, in.EstimateIIO(b.Pos, rn)
		return op, true
	case PathIR2:
		if len(b.Pos) == 0 {
			return op, false
		}
		op.Path, op.Est = PathIR2, in.EstimateIR2(k, b.Pos, rn)
		return op, true
	}
	// Auto: cheapest of the paths that can run the branch.
	best := Operator{Conj: b.Pos, Neg: b.Neg, K: k,
		Path: PathRTree, Est: in.EstimateRTree(k, selConj(in, b.Pos)*rn)}
	if len(b.Pos) > 0 {
		if e := in.EstimateIR2(k, b.Pos, rn); e.Blocks < best.Est.Blocks {
			best.Path, best.Est = PathIR2, e
		}
		if e := in.EstimateIIO(b.Pos, rn); e.Blocks < best.Est.Blocks {
			best.Path, best.Est = PathIIO, e
		}
	}
	return best, true
}

// scanOperator plans the single-scan fallback: push the common
// conjuncts (unless the R-Tree path is forced) and re-check the full
// tree residually.
func scanOperator(in CostInputs, k int, common []string, tree Expr, fullSel float64, force Path) Operator {
	if force == PathRTree || len(common) == 0 {
		return Operator{Path: PathRTree, Residual: tree, K: k, Est: in.EstimateRTree(k, fullSel)}
	}
	resid := residualAfter(fullSel, selConj(in, common))
	return Operator{Path: PathIR2, Conj: common, Residual: tree, K: k,
		Est: in.EstimateIR2(k, common, resid)}
}

// planRanked plans a RANKED k: the MIR²-Tree scored traversal over the
// positive terms, with the boolean tree (and score threshold) applied
// as a residual filter.
func (c *Catalog) planRanked(p *Plan) error {
	q := p.Query
	nt := nnf(p.Tree, false)
	pos := positiveTerms(nt)
	if len(pos) == 0 {
		return fmt.Errorf("skql: SELECT RANKED requires at least one positive keyword to score")
	}
	p.Merge = MergeRanked
	residual := p.Tree
	if t, ok := nt.(Term); ok && len(pos) == 1 && t.Word == pos[0] {
		residual = nil // single positive term: the traversal's own match suffices
	}
	p.Ops = []Operator{{
		Path: PathRanked, Conj: pos, Residual: residual, K: q.K,
		Est: p.In.EstimateRankedScan(q.K, pos, fullSelectivity(p.In, p.Tree)),
	}}
	return nil
}

// planArea plans ALL/COUNT over a rectangle: the engine's native range
// scan with pushed conjuncts, or the sidecar IIO intersection when the
// keywords are selective enough to beat visiting the rectangle.
func (c *Catalog) planArea(p *Plan) error {
	q := p.Query
	in := p.In
	p.Merge = MergeUnion
	if q.Proj == ProjCount {
		p.Merge = MergeCount
	}

	if p.Tree == nil {
		if q.Force == PathIIO {
			return fmt.Errorf("skql: USING iio requires MATCH keywords (no posting lists to intersect)")
		}
		p.Ops = []Operator{{Path: PathRTree, Est: in.EstimateAreaNative(nil, 1)}}
		return nil
	}

	nt := nnf(p.Tree, false)
	if branches, ok := dnfSplit(nt, c.maxBranches()); ok {
		if len(branches) == 0 {
			p.Ops = nil
			return nil
		}
		p.Common = commonConjuncts(branches)
	} else {
		p.Common = topAndPos(nt)
	}
	fullSel := fullSelectivity(in, p.Tree)
	resid := residualAfter(fullSel, selConj(in, p.Common))

	native := Operator{Path: PathRTree, Residual: p.Tree, Est: in.EstimateAreaNative(nil, fullSel)}
	if len(p.Common) > 0 {
		native = Operator{Path: PathIR2, Conj: p.Common, Residual: p.Tree,
			Est: in.EstimateAreaNative(p.Common, resid)}
	}

	switch q.Force {
	case PathRTree:
		p.Ops = []Operator{{Path: PathRTree, Residual: p.Tree, Est: in.EstimateAreaNative(nil, fullSel)}}
		return nil
	case PathIR2:
		p.Ops = []Operator{native}
		return nil
	case PathIIO:
		if len(p.Common) == 0 {
			return fmt.Errorf("skql: USING iio requires at least one keyword common to every MATCH alternative")
		}
		p.Ops = []Operator{{Path: PathIIO, Conj: p.Common, Residual: p.Tree,
			Est: in.EstimateIIO(p.Common, resid)}}
		return nil
	}

	if len(p.Common) > 0 {
		iio := Operator{Path: PathIIO, Conj: p.Common, Residual: p.Tree,
			Est: in.EstimateIIO(p.Common, resid)}
		if iio.Est.Blocks < native.Est.Blocks {
			p.Ops = []Operator{iio}
			return nil
		}
	}
	p.Ops = []Operator{native}
	return nil
}
