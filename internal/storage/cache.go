package storage

import (
	"container/list"
	"sync"
)

// CachedDisk wraps a Device with a write-through LRU buffer pool. Reads that
// hit the pool perform no underlying I/O, so the wrapped device's counters
// reflect only the misses. The paper's experiments run without a buffer pool
// (every node access is a disk I/O); CachedDisk exists for the ablation that
// shows how a buffer pool narrows — but does not close — the gap between the
// baselines and the IR²-Tree.
//
// CachedDisk is safe for concurrent use.
type CachedDisk struct {
	under Device

	mu       sync.Mutex
	capacity int
	lru      *list.List                // front = most recently used
	items    map[BlockID]*list.Element // -> *cacheEntry
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	id   BlockID
	data []byte
}

// NewCachedDisk wraps under with an LRU pool holding up to capacity blocks.
// It panics if capacity is not positive.
func NewCachedDisk(under Device, capacity int) *CachedDisk {
	if capacity <= 0 {
		//skvet:ignore nopanic documented constructor invariant
		panic("storage: cache capacity must be positive")
	}
	return &CachedDisk{
		under:    under,
		capacity: capacity,
		lru:      list.New(),
		items:    make(map[BlockID]*list.Element),
	}
}

// HitRate returns the fraction of reads served from the pool, and the raw
// hit/miss counts.
func (c *CachedDisk) HitRate() (rate float64, hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0, 0, 0
	}
	return float64(c.hits) / float64(total), c.hits, c.misses
}

// BlockSize returns the underlying block size.
func (c *CachedDisk) BlockSize() int { return c.under.BlockSize() }

// Alloc reserves one block on the underlying device.
func (c *CachedDisk) Alloc() BlockID { return c.under.Alloc() }

// AllocRun reserves n consecutive blocks on the underlying device.
func (c *CachedDisk) AllocRun(n int) BlockID { return c.under.AllocRun(n) }

// Free releases a block and evicts it from the pool.
func (c *CachedDisk) Free(id BlockID) {
	c.mu.Lock()
	if el, ok := c.items[id]; ok {
		c.lru.Remove(el)
		delete(c.items, id)
	}
	c.mu.Unlock()
	c.under.Free(id)
}

// Read returns one block, from the pool when possible.
func (c *CachedDisk) Read(id BlockID) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.items[id]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		data := el.Value.(*cacheEntry).data
		out := make([]byte, len(data))
		copy(out, data)
		c.mu.Unlock()
		return out, nil
	}
	c.misses++
	c.mu.Unlock()

	data, err := c.under.Read(id)
	if err != nil {
		return nil, err
	}
	c.insert(id, data)
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// ReadRun reads n consecutive blocks. Cached prefix blocks are served from
// the pool; the first miss falls through to a run read of the remainder.
func (c *CachedDisk) ReadRun(id BlockID, n int) ([]byte, error) {
	bs := c.BlockSize()
	out := make([]byte, n*bs)
	for i := 0; i < n; {
		c.mu.Lock()
		el, ok := c.items[id+BlockID(i)]
		if ok {
			c.lru.MoveToFront(el)
			c.hits++
			copy(out[i*bs:], el.Value.(*cacheEntry).data)
			c.mu.Unlock()
			i++
			continue
		}
		c.mu.Unlock()
		// Miss: read the rest of the run in one underlying call so the
		// sequential-access accounting matches an uncached run read.
		rest := n - i
		c.mu.Lock()
		c.misses += uint64(rest)
		c.mu.Unlock()
		data, err := c.under.ReadRun(id+BlockID(i), rest)
		if err != nil {
			return nil, err
		}
		copy(out[i*bs:], data)
		for j := 0; j < rest; j++ {
			blk := make([]byte, bs)
			copy(blk, data[j*bs:(j+1)*bs])
			c.insert(id+BlockID(i+j), blk)
		}
		i = n
	}
	return out, nil
}

// Write stores a block write-through and refreshes the pool. If the
// underlying write fails, the block's pool entry is invalidated rather than
// kept: the device's state is unknown (a torn write may have landed), so a
// stale cached copy could mask the damage from later reads.
func (c *CachedDisk) Write(id BlockID, data []byte) error {
	if err := c.under.Write(id, data); err != nil {
		c.invalidate(id, 1)
		return err
	}
	blk := make([]byte, c.BlockSize())
	copy(blk, data)
	c.insert(id, blk)
	return nil
}

// WriteRun stores a run write-through and refreshes the pool. On underlying
// failure every block of the run is invalidated — a torn run may have
// persisted any prefix, so none of the old cached copies can be trusted.
func (c *CachedDisk) WriteRun(id BlockID, n int, data []byte) error {
	if err := c.under.WriteRun(id, n, data); err != nil {
		c.invalidate(id, n)
		return err
	}
	bs := c.BlockSize()
	for i := 0; i < n; i++ {
		blk := make([]byte, bs)
		lo := i * bs
		if lo < len(data) {
			hi := lo + bs
			if hi > len(data) {
				hi = len(data)
			}
			copy(blk, data[lo:hi])
		}
		c.insert(id+BlockID(i), blk)
	}
	return nil
}

// invalidate drops pool entries for n consecutive blocks starting at id.
func (c *CachedDisk) invalidate(id BlockID, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		if el, ok := c.items[id+BlockID(i)]; ok {
			c.lru.Remove(el)
			delete(c.items, id+BlockID(i))
		}
	}
}

// insert adds or refreshes a pool entry, evicting the least recently used
// entry when over capacity. data must not be retained by the caller.
func (c *CachedDisk) insert(id BlockID, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		el.Value.(*cacheEntry).data = data
		c.lru.MoveToFront(el)
		return
	}
	c.items[id] = c.lru.PushFront(&cacheEntry{id: id, data: data})
	for c.lru.Len() > c.capacity {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).id)
	}
}

// Stats returns the underlying device's counters (misses only).
func (c *CachedDisk) Stats() Stats { return c.under.Stats() }

// ResetStats zeroes the underlying counters and the hit/miss counts.
func (c *CachedDisk) ResetStats() {
	c.mu.Lock()
	c.hits, c.misses = 0, 0
	c.mu.Unlock()
	c.under.ResetStats()
}

// NumBlocks returns the underlying allocation count.
func (c *CachedDisk) NumBlocks() int { return c.under.NumBlocks() }

// SizeBytes returns the underlying footprint.
func (c *CachedDisk) SizeBytes() int64 { return c.under.SizeBytes() }
