package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Checksummed block framing. ChecksumDisk wraps any Device and reserves the
// last four bytes of every underlying block for a CRC32-C (Castagnoli) of
// the payload, verified on every read. A bit flip anywhere in the block —
// payload or trailer — surfaces as a typed *CorruptBlockError carrying the
// BlockID instead of being deserialized into a wrong tree. The framing is
// opt-in (Config.Checksums) because it shrinks the usable block size by
// four bytes and costs one CRC per block access.

// checksumTrailerLen is the per-block framing overhead in bytes.
const checksumTrailerLen = 4

// castagnoli is the CRC32-C table; CRC32-C has hardware support on amd64
// and arm64, so the per-block cost is a few ns.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptBlockError reports a block whose stored checksum did not match its
// contents. It carries the BlockID so callers can attribute the corruption
// to a substrate region.
type CorruptBlockError struct {
	Block BlockID
}

// Error implements error.
func (e *CorruptBlockError) Error() string {
	return fmt.Sprintf("storage: checksum mismatch on block %d", e.Block)
}

// ChecksumDisk frames every block of the wrapped device with a CRC32-C
// trailer. Its BlockSize is four bytes smaller than the underlying one;
// callers size their records against it and never see the trailer.
//
// A block whose underlying bytes are all zero is treated as a valid
// never-written block (zero payload): freshly allocated blocks read as
// zeros on every Device, and CRC32-C of a zero payload is non-zero, so the
// all-zero pattern cannot be a validly checksummed frame and the two cases
// never collide.
type ChecksumDisk struct {
	under Device
}

var _ Device = (*ChecksumDisk)(nil)

// NewChecksumDisk wraps under with checksum framing. It panics if the
// underlying block size leaves no payload room.
func NewChecksumDisk(under Device) *ChecksumDisk {
	if under.BlockSize() <= checksumTrailerLen {
		//skvet:ignore nopanic documented constructor invariant
		panic(fmt.Sprintf("storage: block size %d too small for checksum framing", under.BlockSize()))
	}
	return &ChecksumDisk{under: under}
}

// Under returns the wrapped device (so tests can corrupt raw frames and
// fault hooks can be installed on the real disk below).
func (c *ChecksumDisk) Under() Device { return c.under }

// BlockSize returns the usable payload size per block.
func (c *ChecksumDisk) BlockSize() int { return c.under.BlockSize() - checksumTrailerLen }

// Alloc implements Device.
func (c *ChecksumDisk) Alloc() BlockID { return c.under.Alloc() }

// AllocRun implements Device.
func (c *ChecksumDisk) AllocRun(n int) BlockID { return c.under.AllocRun(n) }

// Free implements Device.
func (c *ChecksumDisk) Free(id BlockID) { c.under.Free(id) }

// decode verifies one framed block and returns its payload.
func (c *ChecksumDisk) decode(id BlockID, frame []byte) ([]byte, error) {
	payload := frame[:len(frame)-checksumTrailerLen]
	trailer := binary.LittleEndian.Uint32(frame[len(frame)-checksumTrailerLen:])
	if trailer == 0 && allZero(frame) {
		return payload, nil // never written
	}
	if crc32.Checksum(payload, castagnoli) != trailer {
		return nil, &CorruptBlockError{Block: id}
	}
	return payload, nil
}

// encode frames a payload (padding to the payload size) into dst, which
// must be one underlying block long.
func (c *ChecksumDisk) encode(dst, payload []byte) {
	n := copy(dst, payload)
	for i := n; i < len(dst)-checksumTrailerLen; i++ {
		dst[i] = 0
	}
	sum := crc32.Checksum(dst[:len(dst)-checksumTrailerLen], castagnoli)
	binary.LittleEndian.PutUint32(dst[len(dst)-checksumTrailerLen:], sum)
}

// Read implements Device, verifying the block's checksum.
func (c *ChecksumDisk) Read(id BlockID) ([]byte, error) {
	frame, err := c.under.Read(id)
	if err != nil {
		return nil, err
	}
	payload, err := c.decode(id, frame)
	if err != nil {
		return nil, err
	}
	return payload[:c.BlockSize():c.BlockSize()], nil
}

// ReadRun implements Device, verifying every block of the run and returning
// the concatenated payloads.
func (c *ChecksumDisk) ReadRun(id BlockID, n int) ([]byte, error) {
	frames, err := c.under.ReadRun(id, n)
	if err != nil {
		return nil, err
	}
	ubs := c.under.BlockSize()
	pbs := c.BlockSize()
	out := make([]byte, n*pbs)
	for i := 0; i < n; i++ {
		payload, err := c.decode(id+BlockID(i), frames[i*ubs:(i+1)*ubs])
		if err != nil {
			return nil, err
		}
		copy(out[i*pbs:], payload)
	}
	return out, nil
}

// Write implements Device, framing the payload with its checksum.
func (c *ChecksumDisk) Write(id BlockID, data []byte) error {
	if len(data) > c.BlockSize() {
		return fmt.Errorf("%w: %d > %d", ErrBlockTooLarge, len(data), c.BlockSize())
	}
	frame := make([]byte, c.under.BlockSize())
	c.encode(frame, data)
	return c.under.Write(id, frame)
}

// WriteRun implements Device, framing each block of the run.
func (c *ChecksumDisk) WriteRun(id BlockID, n int, data []byte) error {
	pbs := c.BlockSize()
	if len(data) > n*pbs {
		return fmt.Errorf("%w: %d > %d", ErrBlockTooLarge, len(data), n*pbs)
	}
	ubs := c.under.BlockSize()
	frames := make([]byte, n*ubs)
	for i := 0; i < n; i++ {
		lo := i * pbs
		hi := lo + pbs
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		c.encode(frames[i*ubs:(i+1)*ubs], data[lo:hi])
	}
	return c.under.WriteRun(id, n, frames)
}

// Stats implements Device.
func (c *ChecksumDisk) Stats() Stats { return c.under.Stats() }

// ResetStats implements Device.
func (c *ChecksumDisk) ResetStats() { c.under.ResetStats() }

// NumBlocks implements Device.
func (c *ChecksumDisk) NumBlocks() int { return c.under.NumBlocks() }

// SizeBytes implements Device.
func (c *ChecksumDisk) SizeBytes() int64 { return c.under.SizeBytes() }

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
