package storage

import (
	"testing"
	"time"
)

// TestCostModelDominance documents the relationship the evaluation leans
// on: under the default model, one random access costs more than a hundred
// sequential ones, so "execution time is primarily proportional to the
// random access numbers" (paper §6).
func TestCostModelDominance(t *testing.T) {
	cm := DefaultCostModel()
	random := cm.Time(Stats{RandomReads: 1})
	sequential := cm.Time(Stats{SequentialReads: 100})
	if random <= sequential {
		t.Errorf("1 random (%v) should exceed 100 sequential (%v)", random, sequential)
	}
}

func TestCostModelZeroStats(t *testing.T) {
	if got := DefaultCostModel().Time(Stats{}); got != 0 {
		t.Errorf("empty stats cost %v", got)
	}
}

func TestCostModelLinearity(t *testing.T) {
	cm := CostModel{RandomAccess: 3 * time.Millisecond, SequentialAccess: 1 * time.Millisecond}
	a := Stats{RandomReads: 2, SequentialWrites: 4}
	b := Stats{RandomWrites: 1, SequentialReads: 5}
	if cm.Time(a)+cm.Time(b) != cm.Time(a.Add(b)) {
		t.Error("cost model not additive")
	}
}
