package storage

// Device is the block-device abstraction the index structures are built on.
// *Disk is the canonical implementation; *CachedDisk layers an LRU buffer
// pool on top of any Device for the buffer-cache ablation experiments.
type Device interface {
	// BlockSize returns the block size in bytes.
	BlockSize() int
	// Alloc reserves one block.
	Alloc() BlockID
	// AllocRun reserves n consecutive blocks, returning the first ID.
	AllocRun(n int) BlockID
	// Free releases a block.
	Free(id BlockID)
	// Read returns a copy of one block.
	Read(id BlockID) ([]byte, error)
	// ReadRun reads n consecutive blocks into one buffer.
	ReadRun(id BlockID, n int) ([]byte, error)
	// Write stores up to BlockSize bytes into a block.
	Write(id BlockID, data []byte) error
	// WriteRun stores data across n consecutive blocks.
	WriteRun(id BlockID, n int, data []byte) error
	// Stats returns a snapshot of the access counters.
	Stats() Stats
	// ResetStats zeroes the access counters.
	ResetStats()
	// NumBlocks returns the number of allocated blocks.
	NumBlocks() int
	// SizeBytes returns the allocated footprint in bytes.
	SizeBytes() int64
}

var (
	_ Device = (*Disk)(nil)
	_ Device = (*CachedDisk)(nil)
)

// RunReaderInto is the optional fast-read extension of Device: reading a run
// of blocks into a caller-provided buffer, so steady-state readers need not
// allocate per node. *Disk implements it; wrapped devices (checksums, fault
// injection, buffer-cache ablations) fall back to ReadRun plus a copy.
type RunReaderInto interface {
	// ReadRunInto reads n consecutive blocks starting at id into dst,
	// with accounting identical to ReadRun.
	ReadRunInto(id BlockID, n int, dst []byte) error
}

var _ RunReaderInto = (*Disk)(nil)

// ReadRunTo reads n blocks from dev into dst, using ReadRunInto when the
// device supports it and falling back to an allocating ReadRun otherwise.
func ReadRunTo(dev Device, id BlockID, n int, dst []byte) error {
	if r, ok := dev.(RunReaderInto); ok {
		return r.ReadRunInto(id, n, dst)
	}
	buf, err := dev.ReadRun(id, n)
	if err != nil {
		return err
	}
	copy(dst, buf)
	return nil
}

// Meter measures the I/O performed by a bracketed operation on a Device.
// Typical use:
//
//	m := storage.StartMeter(dev)
//	... perform queries ...
//	cost := m.Stop()
type Meter struct {
	dev   Device
	start Stats
}

// StartMeter snapshots the device counters.
func StartMeter(dev Device) *Meter {
	return &Meter{dev: dev, start: dev.Stats()}
}

// Stop returns the I/O performed since StartMeter.
func (m *Meter) Stop() Stats {
	return m.dev.Stats().Sub(m.start)
}
