package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault injection. A FaultDevice wraps any Device with a deterministic,
// seedable FaultPlan so tests can drive every failure mode a real disk has:
// read and write errors (on the Nth access or on specific blocks), silent
// bit-flip corruption, torn multi-block writes, allocation failure when the
// disk fills up, and injected latency. Every injected failure surfaces as a
// typed *FaultError carrying the operation and block it hit, so callers can
// assert error provenance all the way up the stack.

// ErrInjected is the sentinel every *FaultError wraps; errors.Is(err,
// ErrInjected) distinguishes injected faults from organic device errors.
var ErrInjected = errors.New("storage: injected fault")

// ErrDeviceFull is the sentinel for allocation failure: structures that
// guard against NilBlock allocations wrap it, so full-disk conditions
// classify as I/O faults alongside injected ones.
var ErrDeviceFull = errors.New("storage: device full")

// FaultKind names the failure mode of one injected fault.
type FaultKind int

const (
	// KindReadError is a failed block read.
	KindReadError FaultKind = iota
	// KindWriteError is a failed block write.
	KindWriteError
	// KindTornWrite is a multi-block write that persisted only a prefix.
	KindTornWrite
	// KindAllocFail is an access to a block handed out after the simulated
	// disk filled up.
	KindAllocFail
)

// String names the kind for error messages and test tables.
func (k FaultKind) String() string {
	switch k {
	case KindReadError:
		return "read-error"
	case KindWriteError:
		return "write-error"
	case KindTornWrite:
		return "torn-write"
	case KindAllocFail:
		return "alloc-fail"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultError reports one injected device fault with full provenance: what
// kind of fault, which operation tripped it, and which block it hit.
type FaultError struct {
	Kind  FaultKind
	Op    Op
	Block BlockID
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("storage: injected %s on %s of block %d", e.Kind, e.Op, e.Block)
}

// Unwrap makes errors.Is(err, ErrInjected) true for every injected fault.
func (e *FaultError) Unwrap() error { return ErrInjected }

// IsIOFault reports whether err is a device-level failure — an injected
// fault, a checksum mismatch, or an access to a missing block — rather than
// a caller mistake. The sharded engine uses this to decide that a shard's
// storage (not the query) is at fault and degrade instead of erroring.
func IsIOFault(err error) bool {
	if err == nil {
		return false
	}
	var fe *FaultError
	var ce *CorruptBlockError
	return errors.As(err, &fe) || errors.As(err, &ce) ||
		errors.Is(err, ErrBadBlock) || errors.Is(err, ErrDeviceFull)
}

// FaultPlan is a deterministic script of device faults. The zero value
// injects nothing. Access counters (reads and writes counted separately,
// starting at 1) make "fail the Nth access" reproducible regardless of
// wall-clock or goroutine interleaving within a single-threaded test; the
// Seed makes bit-flip positions reproducible across runs.
type FaultPlan struct {
	// Seed drives the pseudo-random choices (bit positions for flips).
	Seed int64

	// FailReadAt and FailWriteAt fail the Nth read / Nth write (1-based).
	FailReadAt, FailWriteAt []uint64

	// FailReadBlocks / FailWriteBlocks fail every access to these blocks.
	FailReadBlocks, FailWriteBlocks []BlockID

	// FailWritesFrom, when non-zero, fails every write from the Nth onward
	// (1-based) — the "process killed mid-save" simulation.
	FailWritesFrom uint64

	// FlipReadAt silently flips one pseudo-random bit in the data returned
	// by the Nth read (1-based). The caller sees no error — exactly what a
	// bit-rotted platter does — so only checksum framing can catch it.
	FlipReadAt []uint64

	// FlipBlocks silently corrupts every read of these blocks.
	FlipBlocks []BlockID

	// TornWriteAt makes the Nth WriteRun (1-based) persist only its first
	// block and then fail with KindTornWrite.
	TornWriteAt []uint64

	// MaxBlocks, when non-zero, simulates a full disk: allocations beyond
	// this many blocks hand out NilBlock, and every subsequent access to
	// NilBlock fails with KindAllocFail.
	MaxBlocks int

	// Latency is added to every read and write.
	Latency time.Duration
}

// FaultDevice wraps a Device and executes a FaultPlan. It is safe for
// concurrent use; the plan's counters are guarded by one mutex.
type FaultDevice struct {
	under Device

	mu        sync.Mutex
	plan      FaultPlan
	rng       *rand.Rand
	reads     uint64 // completed read-access count
	writes    uint64 // completed write-access count
	runs      uint64 // WriteRun call count
	allocated int
	injected  uint64
}

var _ Device = (*FaultDevice)(nil)

// NewFaultDevice wraps under with the given plan.
func NewFaultDevice(under Device, plan FaultPlan) *FaultDevice {
	return &FaultDevice{
		under: under,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// SetPlan replaces the fault plan (counters keep running).
func (d *FaultDevice) SetPlan(plan FaultPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.plan = plan
	d.rng = rand.New(rand.NewSource(plan.Seed))
}

// Injected returns how many faults have fired so far.
func (d *FaultDevice) Injected() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injected
}

// Under returns the wrapped device (tests reach through to corrupt raw
// blocks or inspect state).
func (d *FaultDevice) Under() Device { return d.under }

func contains[T comparable](xs []T, x T) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// fail records one injected fault and builds its error.
func (d *FaultDevice) fail(kind FaultKind, op Op, id BlockID) error {
	d.injected++
	return &FaultError{Kind: kind, Op: op, Block: id}
}

// checkRead advances the read counter and decides this access's fate:
// error, silent bit flip (flip=true), or clean.
func (d *FaultDevice) checkRead(id BlockID) (flip bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.plan.MaxBlocks > 0 && id == NilBlock {
		return false, d.fail(KindAllocFail, OpRead, id)
	}
	d.reads++
	n := d.reads
	if contains(d.plan.FailReadAt, n) || contains(d.plan.FailReadBlocks, id) {
		return false, d.fail(KindReadError, OpRead, id)
	}
	if contains(d.plan.FlipReadAt, n) || contains(d.plan.FlipBlocks, id) {
		d.injected++
		return true, nil
	}
	return false, nil
}

// checkWrite advances the write counter and decides this access's fate.
func (d *FaultDevice) checkWrite(id BlockID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.plan.MaxBlocks > 0 && id == NilBlock {
		return d.fail(KindAllocFail, OpWrite, id)
	}
	d.writes++
	n := d.writes
	if d.plan.FailWritesFrom != 0 && n >= d.plan.FailWritesFrom {
		return d.fail(KindWriteError, OpWrite, id)
	}
	if contains(d.plan.FailWriteAt, n) || contains(d.plan.FailWriteBlocks, id) {
		return d.fail(KindWriteError, OpWrite, id)
	}
	return nil
}

// flipBit flips one seeded-pseudo-random bit of data in place.
func (d *FaultDevice) flipBit(data []byte) {
	if len(data) == 0 {
		return
	}
	d.mu.Lock()
	bit := d.rng.Intn(len(data) * 8)
	d.mu.Unlock()
	data[bit/8] ^= 1 << (bit % 8)
}

func (d *FaultDevice) sleep() {
	if d.plan.Latency > 0 {
		time.Sleep(d.plan.Latency)
	}
}

// BlockSize implements Device.
func (d *FaultDevice) BlockSize() int { return d.under.BlockSize() }

// Alloc implements Device. Once MaxBlocks allocations have been handed out
// it returns NilBlock — the full-disk condition — and every access to
// NilBlock fails with KindAllocFail.
func (d *FaultDevice) Alloc() BlockID {
	d.mu.Lock()
	if d.plan.MaxBlocks > 0 && d.allocated >= d.plan.MaxBlocks {
		d.mu.Unlock()
		return NilBlock
	}
	d.allocated++
	d.mu.Unlock()
	return d.under.Alloc()
}

// AllocRun implements Device, with the same full-disk behavior as Alloc.
func (d *FaultDevice) AllocRun(n int) BlockID {
	d.mu.Lock()
	if d.plan.MaxBlocks > 0 && d.allocated+n > d.plan.MaxBlocks {
		d.mu.Unlock()
		return NilBlock
	}
	d.allocated += n
	d.mu.Unlock()
	return d.under.AllocRun(n)
}

// Free implements Device.
func (d *FaultDevice) Free(id BlockID) {
	if id == NilBlock {
		return
	}
	d.mu.Lock()
	if d.allocated > 0 {
		d.allocated--
	}
	d.mu.Unlock()
	d.under.Free(id)
}

// Read implements Device.
func (d *FaultDevice) Read(id BlockID) ([]byte, error) {
	d.sleep()
	flip, err := d.checkRead(id)
	if err != nil {
		return nil, err
	}
	data, err := d.under.Read(id)
	if err != nil {
		return nil, err
	}
	if flip {
		d.flipBit(data)
	}
	return data, nil
}

// ReadRun implements Device. Each block of the run is checked against the
// plan, so per-block read errors and flips hit runs too.
func (d *FaultDevice) ReadRun(id BlockID, n int) ([]byte, error) {
	d.sleep()
	var flips []int
	for i := 0; i < n; i++ {
		flip, err := d.checkRead(id + BlockID(i))
		if err != nil {
			return nil, err
		}
		if flip {
			flips = append(flips, i)
		}
	}
	data, err := d.under.ReadRun(id, n)
	if err != nil {
		return nil, err
	}
	bs := d.under.BlockSize()
	for _, i := range flips {
		d.flipBit(data[i*bs : (i+1)*bs])
	}
	return data, nil
}

// Write implements Device.
func (d *FaultDevice) Write(id BlockID, data []byte) error {
	d.sleep()
	if err := d.checkWrite(id); err != nil {
		return err
	}
	return d.under.Write(id, data)
}

// WriteRun implements Device. A torn write persists only the run's first
// block, then fails — the classic partial-write crash signature.
func (d *FaultDevice) WriteRun(id BlockID, n int, data []byte) error {
	d.sleep()
	d.mu.Lock()
	d.runs++
	torn := contains(d.plan.TornWriteAt, d.runs)
	d.mu.Unlock()
	if torn && n > 1 {
		bs := d.under.BlockSize()
		first := data
		if len(first) > bs {
			first = first[:bs]
		}
		if err := d.Write(id, first); err != nil {
			return err
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.fail(KindTornWrite, OpWrite, id+1)
	}
	for i := 0; i < n; i++ {
		if err := d.checkWrite(id + BlockID(i)); err != nil {
			return err
		}
	}
	return d.under.WriteRun(id, n, data)
}

// Stats implements Device.
func (d *FaultDevice) Stats() Stats { return d.under.Stats() }

// ResetStats implements Device.
func (d *FaultDevice) ResetStats() { d.under.ResetStats() }

// NumBlocks implements Device.
func (d *FaultDevice) NumBlocks() int { return d.under.NumBlocks() }

// SizeBytes implements Device.
func (d *FaultDevice) SizeBytes() int64 { return d.under.SizeBytes() }
