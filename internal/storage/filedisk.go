package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileDisk is a Device backed by a real file, giving the library durable,
// reopenable indexes — the production counterpart of the in-memory Disk
// simulator (which the evaluation uses for deterministic I/O accounting).
// The same random/sequential access accounting applies, so a FileDisk can
// be metered identically.
//
// Layout: block 1 is the device's own metadata (magic, block size, next
// block ID, free-list head); data blocks follow at offset (id-1)*blockSize.
// Freed blocks form an on-disk chain: the first 8 bytes of a free block
// point to the next free block, so the free list survives reopening.
type FileDisk struct {
	f         *os.File
	blockSize int

	mu       sync.Mutex
	next     BlockID
	freeHead BlockID
	nAlloc   int
	last     BlockID
	stats    Stats
	fault    FaultFunc
}

const (
	fileDiskMagic   = 0x49523254 // "IR2T"
	fileMetaBlockID = 1
)

// CreateFileDisk creates (truncating) a file-backed device at path.
func CreateFileDisk(path string, blockSize int) (*FileDisk, error) {
	if blockSize < 32 {
		return nil, fmt.Errorf("storage: block size %d too small for a file disk", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create file disk: %w", err)
	}
	d := &FileDisk{f: f, blockSize: blockSize, next: fileMetaBlockID + 1}
	if err := d.writeMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// OpenFileDisk opens an existing file-backed device.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open file disk: %w", err)
	}
	var hdr [32]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: read file disk metadata: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != fileDiskMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a file disk", path)
	}
	d := &FileDisk{
		f:         f,
		blockSize: int(binary.LittleEndian.Uint32(hdr[4:8])),
		next:      BlockID(binary.LittleEndian.Uint64(hdr[8:16])),
		freeHead:  BlockID(binary.LittleEndian.Uint64(hdr[16:24])),
		nAlloc:    int(binary.LittleEndian.Uint64(hdr[24:32])),
	}
	if d.blockSize < 32 {
		f.Close()
		return nil, fmt.Errorf("storage: corrupt file disk header (block size %d)", d.blockSize)
	}
	return d, nil
}

// writeMeta persists the allocator state. Callers must hold mu (or be the
// constructor). Metadata writes are bookkeeping, not workload I/O, so they
// are not counted in the stats.
func (d *FileDisk) writeMeta() error {
	var hdr [32]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fileDiskMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(d.blockSize))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(d.next))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(d.freeHead))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(d.nAlloc))
	if _, err := d.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("storage: write file disk metadata: %w", err)
	}
	return nil
}

// Close flushes metadata and closes the file.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeMeta(); err != nil {
		d.f.Close()
		return err
	}
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// SyncMeta persists the allocator state and fsyncs the file without
// closing it. Durable save paths call this before copying the file into a
// snapshot, so the snapshot's header matches its data blocks.
func (d *FileDisk) SyncMeta() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writeMeta(); err != nil {
		return err
	}
	return d.f.Sync()
}

// Path returns the underlying file's name.
func (d *FileDisk) Path() string { return d.f.Name() }

// BlockSize implements Device.
func (d *FileDisk) BlockSize() int { return d.blockSize }

func (d *FileDisk) offset(id BlockID) int64 {
	return int64(id-1) * int64(d.blockSize)
}

// Alloc implements Device, recycling the free list first.
func (d *FileDisk) Alloc() BlockID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.allocLocked()
	//skvet:ignore erroprov best-effort eager persist; Close/SyncMeta write the meta block authoritatively
	d.writeMeta() //nolint:errcheck // best-effort; Close persists authoritatively
	return id
}

func (d *FileDisk) allocLocked() BlockID {
	d.nAlloc++
	if d.freeHead != NilBlock {
		id := d.freeHead
		var buf [8]byte
		if _, err := d.f.ReadAt(buf[:], d.offset(id)); err == nil {
			d.freeHead = BlockID(binary.LittleEndian.Uint64(buf[:]))
		} else {
			d.freeHead = NilBlock
		}
		// Zero the recycled block so it reads like a fresh one.
		d.f.WriteAt(make([]byte, d.blockSize), d.offset(id)) //nolint:errcheck
		return id
	}
	id := d.next
	d.next++
	return id
}

// AllocRun implements Device. Runs always come from fresh space (the free
// list is not guaranteed contiguous).
func (d *FileDisk) AllocRun(n int) BlockID {
	if n <= 0 {
		//skvet:ignore nopanic documented allocator invariant: a non-positive run is a caller logic error
		panic(fmt.Sprintf("storage: invalid run length %d", n))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next += BlockID(n)
	d.nAlloc += n
	//skvet:ignore erroprov best-effort eager persist; Close/SyncMeta write the meta block authoritatively
	d.writeMeta() //nolint:errcheck
	return id
}

// Free implements Device, pushing the block onto the on-disk free chain.
// Double-freeing a block corrupts the chain; callers own that invariant
// (as with any manual allocator).
func (d *FileDisk) Free(id BlockID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id <= fileMetaBlockID || id >= d.next {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(d.freeHead))
	if _, err := d.f.WriteAt(buf[:], d.offset(id)); err != nil {
		return // leak the block rather than corrupt the chain
	}
	d.freeHead = id
	d.nAlloc--
	//skvet:ignore erroprov best-effort eager persist; Close/SyncMeta write the meta block authoritatively
	d.writeMeta() //nolint:errcheck
}

// Read implements Device.
func (d *FileDisk) Read(id BlockID) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readLocked(id)
}

func (d *FileDisk) readLocked(id BlockID) ([]byte, error) {
	if err := d.checkAccess(OpRead, id); err != nil {
		return nil, err
	}
	buf := make([]byte, d.blockSize)
	if _, err := d.f.ReadAt(buf, d.offset(id)); err != nil && err != io.EOF {
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: read %d: %v", ErrBadBlock, id, err)
		}
	}
	// Allocated blocks past the current file end (never written) read as
	// zeros, like a sparse file; ReadAt signals them with (Unexpected)EOF
	// and buf is already zero-filled past the bytes it delivered.
	d.account(id, OpRead)
	return buf, nil
}

// ReadRun implements Device.
func (d *FileDisk) ReadRun(id BlockID, n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("storage: invalid run length %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, 0, n*d.blockSize)
	for i := 0; i < n; i++ {
		blk, err := d.readLocked(id + BlockID(i))
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}

// Write implements Device.
func (d *FileDisk) Write(id BlockID, data []byte) error {
	if len(data) > d.blockSize {
		return fmt.Errorf("%w: %d > %d", ErrBlockTooLarge, len(data), d.blockSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeLocked(id, data)
}

func (d *FileDisk) writeLocked(id BlockID, data []byte) error {
	if err := d.checkAccess(OpWrite, id); err != nil {
		return err
	}
	buf := make([]byte, d.blockSize)
	copy(buf, data)
	if _, err := d.f.WriteAt(buf, d.offset(id)); err != nil {
		return fmt.Errorf("%w: write %d: %v", ErrBadBlock, id, err)
	}
	d.account(id, OpWrite)
	return nil
}

// WriteRun implements Device.
func (d *FileDisk) WriteRun(id BlockID, n int, data []byte) error {
	if len(data) > n*d.blockSize {
		return fmt.Errorf("%w: %d > %d", ErrBlockTooLarge, len(data), n*d.blockSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < n; i++ {
		lo := i * d.blockSize
		var chunk []byte
		if lo < len(data) {
			hi := lo + d.blockSize
			if hi > len(data) {
				hi = len(data)
			}
			chunk = data[lo:hi]
		}
		if err := d.writeLocked(id+BlockID(i), chunk); err != nil {
			return err
		}
	}
	return nil
}

// checkAccess validates the block ID and runs the fault hook. Callers hold mu.
func (d *FileDisk) checkAccess(op Op, id BlockID) error {
	if id <= fileMetaBlockID || id >= d.next {
		return fmt.Errorf("%w: %s %d", ErrBadBlock, op, id)
	}
	if d.fault != nil {
		if err := d.fault(op, id); err != nil {
			return err
		}
	}
	return nil
}

// account mirrors Disk.account. Callers hold mu.
func (d *FileDisk) account(id BlockID, op Op) {
	seq := d.last != 0 && id == d.last+1
	d.last = id
	switch {
	case op == OpRead && seq:
		d.stats.SequentialReads++
	case op == OpRead:
		d.stats.RandomReads++
	case seq:
		d.stats.SequentialWrites++
	default:
		d.stats.RandomWrites++
	}
}

// SetFault installs (or clears) a fault-injection hook.
func (d *FileDisk) SetFault(f FaultFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

// Stats implements Device.
func (d *FileDisk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats implements Device.
func (d *FileDisk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.last = 0
}

// NumBlocks implements Device: currently allocated blocks.
func (d *FileDisk) NumBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nAlloc
}

// SizeBytes implements Device: the data footprint (allocated blocks ×
// block size, metadata excluded).
func (d *FileDisk) SizeBytes() int64 {
	return int64(d.NumBlocks()) * int64(d.blockSize)
}

var _ Device = (*FileDisk)(nil)
