package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newFileDisk(t *testing.T, blockSize int) *FileDisk {
	t.Helper()
	d, err := CreateFileDisk(filepath.Join(t.TempDir(), "disk.db"), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestFileDiskRoundTrip(t *testing.T) {
	d := newFileDisk(t, 64)
	id := d.Alloc()
	if err := d.Write(id, []byte("durable bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:13]) != "durable bytes" {
		t.Errorf("read back %q", got[:13])
	}
	for _, b := range got[13:] {
		if b != 0 {
			t.Fatal("short write not zero-padded")
		}
	}
}

func TestFileDiskReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.db")
	d, err := CreateFileDisk(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	a := d.Alloc()
	run := d.AllocRun(3)
	if err := d.Write(a, []byte("single")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRun(run, 3, []byte("spanning multiple blocks of data")); err != nil {
		t.Fatal(err)
	}
	freed := d.Alloc()
	d.Free(freed)
	wantBlocks := d.NumBlocks()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.BlockSize() != 128 {
		t.Errorf("block size = %d", r.BlockSize())
	}
	if r.NumBlocks() != wantBlocks {
		t.Errorf("NumBlocks = %d, want %d", r.NumBlocks(), wantBlocks)
	}
	got, err := r.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:6]) != "single" {
		t.Errorf("data lost across reopen: %q", got[:6])
	}
	runData, err := r.ReadRun(run, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(runData[:8]) != "spanning" {
		t.Errorf("run data lost: %q", runData[:8])
	}
	// The freed block is recycled after reopen.
	if id := r.Alloc(); id != freed {
		t.Errorf("free list lost: alloc = %d, want recycled %d", id, freed)
	}
	fresh, err := r.Read(freed)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range fresh {
		if b != 0 {
			t.Fatal("recycled block not zeroed")
		}
	}
}

func TestFileDiskAccounting(t *testing.T) {
	d := newFileDisk(t, 64)
	first := d.AllocRun(4)
	d.ResetStats()
	if _, err := d.ReadRun(first, 4); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.RandomReads != 1 || s.SequentialReads != 3 {
		t.Errorf("ReadRun stats = %+v", s)
	}
}

func TestFileDiskBadAccess(t *testing.T) {
	d := newFileDisk(t, 64)
	if _, err := d.Read(999); !errors.Is(err, ErrBadBlock) {
		t.Errorf("read unallocated: %v", err)
	}
	if _, err := d.Read(fileMetaBlockID); !errors.Is(err, ErrBadBlock) {
		t.Errorf("read metadata block: %v", err)
	}
	id := d.Alloc()
	if err := d.Write(id, make([]byte, 65)); !errors.Is(err, ErrBlockTooLarge) {
		t.Errorf("oversized write: %v", err)
	}
	// Free of invalid IDs is a no-op.
	d.Free(0)
	d.Free(999)
}

func TestFileDiskFault(t *testing.T) {
	d := newFileDisk(t, 64)
	id := d.Alloc()
	boom := errors.New("bad sector")
	d.SetFault(func(op Op, b BlockID) error { return boom })
	if _, err := d.Read(id); !errors.Is(err, boom) {
		t.Errorf("fault not propagated: %v", err)
	}
	d.SetFault(nil)
	if _, err := d.Read(id); err != nil {
		t.Errorf("after clearing fault: %v", err)
	}
}

func TestOpenFileDiskRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-disk")
	if err := writeFile(path, []byte("hello world, definitely not a disk header")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(path); err == nil {
		t.Error("garbage file opened as disk")
	}
	if _, err := OpenFileDisk(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file opened")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
