package storage

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzChecksumRoundTrip drives the checksum framing with arbitrary payloads
// and arbitrary raw-frame corruption. The contract under fuzz:
//
//   - an uncorrupted frame always reads back as the written payload;
//   - a corrupted frame either fails with *CorruptBlockError naming the
//     block, or — if the mutation happens to produce another valid frame
//     (an exact CRC collision, or the all-zero "never written" frame) —
//     decodes to something self-consistent;
//   - nothing ever panics.
func FuzzChecksumRoundTrip(f *testing.F) {
	f.Add([]byte("hello spatial world"), []byte{0x01}, uint32(0))
	f.Add([]byte{}, []byte{0xff, 0xff, 0xff, 0xff}, uint32(3))
	f.Add(bytes.Repeat([]byte{0xaa}, 124), []byte{0x80}, uint32(123))
	f.Add([]byte("q"), []byte{}, uint32(7))
	f.Fuzz(func(t *testing.T, payload, patch []byte, off uint32) {
		under := NewDisk(128)
		cd := NewChecksumDisk(under)
		bs := cd.BlockSize()
		if len(payload) > bs {
			payload = payload[:bs]
		}
		id := cd.Alloc()
		if err := cd.Write(id, payload); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := cd.Read(id)
		if err != nil {
			t.Fatalf("clean read: %v", err)
		}
		if !bytes.Equal(got[:len(payload)], payload) {
			t.Fatalf("roundtrip mismatch: wrote %x, read %x", payload, got[:len(payload)])
		}
		for i, b := range got[len(payload):] {
			if b != 0 {
				t.Fatalf("padding byte %d = %#x, want 0", len(payload)+i, b)
			}
		}

		// Corrupt the raw frame underneath the checksum layer.
		raw, err := under.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		changed := false
		for i, b := range patch {
			if b == 0 {
				continue
			}
			raw[(int(off)+i)%len(raw)] ^= b
			changed = true
		}
		if err := under.Write(id, raw); err != nil {
			t.Fatal(err)
		}

		got2, err := cd.Read(id)
		if !changed {
			if err != nil || !bytes.Equal(got2[:len(payload)], payload) {
				t.Fatalf("no-op patch broke the frame: %v", err)
			}
			return
		}
		if err != nil {
			var ce *CorruptBlockError
			if !errors.As(err, &ce) {
				t.Fatalf("corruption error not typed: %v", err)
			}
			if ce.Block != id {
				t.Fatalf("corruption reported block %d, corrupted %d", ce.Block, id)
			}
			return
		}
		// The read passed despite a changed frame: it must be because the
		// frame is still valid on its own terms — all-zero, or payload and
		// trailer mutated into a consistent pair. Never a torn half-read.
		reencoded := make([]byte, len(raw))
		cd.encode(reencoded, got2)
		if !bytes.Equal(reencoded, raw) && !allZero(raw) {
			t.Fatalf("corrupt frame decoded silently:\nframe: %x\npayload: %x", raw, got2)
		}
	})
}

// FuzzChecksumRunRoundTrip covers the multi-block run framing the index
// substrates use for node and posting regions.
func FuzzChecksumRunRoundTrip(f *testing.F) {
	f.Add([]byte("run payload spanning blocks run payload spanning blocks"), uint32(1), []byte{0x04})
	f.Add(bytes.Repeat([]byte{7}, 300), uint32(2), []byte{0xff})
	f.Fuzz(func(t *testing.T, payload []byte, nRaw uint32, patch []byte) {
		under := NewDisk(96)
		cd := NewChecksumDisk(under)
		bs := cd.BlockSize()
		n := int(nRaw)%4 + 1
		if len(payload) > n*bs {
			payload = payload[:n*bs]
		}
		id := cd.AllocRun(n)
		if err := cd.WriteRun(id, n, payload); err != nil {
			t.Fatalf("write run: %v", err)
		}
		got, err := cd.ReadRun(id, n)
		if err != nil {
			t.Fatalf("clean read run: %v", err)
		}
		if !bytes.Equal(got[:len(payload)], payload) {
			t.Fatal("run roundtrip mismatch")
		}

		changed := false
		for i, b := range patch {
			if b == 0 {
				continue
			}
			blk := id + BlockID(i%n)
			raw, err := under.Read(blk)
			if err != nil {
				t.Fatal(err)
			}
			raw[(i*13)%len(raw)] ^= b
			if err := under.Write(blk, raw); err != nil {
				t.Fatal(err)
			}
			changed = true
		}
		if !changed {
			return
		}
		if _, err := cd.ReadRun(id, n); err != nil {
			var ce *CorruptBlockError
			if !errors.As(err, &ce) {
				t.Fatalf("run corruption error not typed: %v", err)
			}
			if ce.Block < id || ce.Block >= id+BlockID(n) {
				t.Fatalf("corruption reported block %d outside run [%d,%d)", ce.Block, id, id+BlockID(n))
			}
		}
	})
}
