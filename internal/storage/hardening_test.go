package storage

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"
)

// --- FaultDevice ---

func TestFaultDeviceNthAccess(t *testing.T) {
	d := NewFaultDevice(NewDisk(64), FaultPlan{
		FailReadAt:  []uint64{2},
		FailWriteAt: []uint64{3},
	})
	a, b := d.Alloc(), d.Alloc()
	if err := d.Write(a, []byte("one")); err != nil { // write #1
		t.Fatalf("write 1: %v", err)
	}
	if err := d.Write(b, []byte("two")); err != nil { // write #2
		t.Fatalf("write 2: %v", err)
	}
	if _, err := d.Read(a); err != nil { // read #1
		t.Fatalf("read 1: %v", err)
	}
	_, err := d.Read(b) // read #2: injected
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != KindReadError || fe.Block != b || fe.Op != OpRead {
		t.Fatalf("read 2: want *FaultError{read-error, %d}, got %v", b, err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2: error does not unwrap to ErrInjected: %v", err)
	}
	if !IsIOFault(err) {
		t.Fatalf("IsIOFault(%v) = false", err)
	}
	err = d.Write(a, []byte("x")) // write #3: injected
	if !errors.As(err, &fe) || fe.Kind != KindWriteError || fe.Block != a {
		t.Fatalf("write 3: want *FaultError{write-error, %d}, got %v", a, err)
	}
	if got := d.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
}

func TestFaultDeviceBlockTargets(t *testing.T) {
	under := NewDisk(64)
	d := NewFaultDevice(under, FaultPlan{})
	a, b := d.Alloc(), d.Alloc()
	d.SetPlan(FaultPlan{FailReadBlocks: []BlockID{b}, FailWriteBlocks: []BlockID{a}})

	var fe *FaultError
	if err := d.Write(a, []byte("x")); !errors.As(err, &fe) || fe.Block != a {
		t.Fatalf("write a: want fault on %d, got %v", a, err)
	}
	if err := d.Write(b, []byte("y")); err != nil {
		t.Fatalf("write b: %v", err)
	}
	if _, err := d.Read(b); !errors.As(err, &fe) || fe.Block != b {
		t.Fatalf("read b: want fault on %d, got %v", b, err)
	}
}

func TestFaultDeviceBitFlipDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 32)
	run := func(seed int64) []byte {
		d := NewFaultDevice(NewDisk(64), FaultPlan{Seed: seed, FlipReadAt: []uint64{1}})
		id := d.Alloc()
		if err := d.Write(id, payload); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := d.Read(id)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return got
	}
	one, two := run(7), run(7)
	if !bytes.Equal(one, two) {
		t.Fatalf("same seed produced different flips:\n%x\n%x", one, two)
	}
	if bytes.Equal(one[:32], payload) {
		t.Fatalf("no bit was flipped")
	}
	diff := 0
	for i := range payload {
		for bit := 0; bit < 8; bit++ {
			if (one[i]^payload[i])>>bit&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
}

func TestFaultDeviceTornWriteRun(t *testing.T) {
	under := NewDisk(16)
	d := NewFaultDevice(under, FaultPlan{TornWriteAt: []uint64{1}})
	id := d.AllocRun(3)
	data := bytes.Repeat([]byte{0x5A}, 48)
	err := d.WriteRun(id, 3, data)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != KindTornWrite {
		t.Fatalf("want torn-write fault, got %v", err)
	}
	// First block persisted, rest untouched (still zero).
	first, err := under.Read(id)
	if err != nil {
		t.Fatalf("read first: %v", err)
	}
	if !bytes.Equal(first, data[:16]) {
		t.Fatalf("first block not persisted: %x", first)
	}
	second, err := under.Read(id + 1)
	if err != nil {
		t.Fatalf("read second: %v", err)
	}
	if !allZero(second) {
		t.Fatalf("second block should be untouched, got %x", second)
	}
	// Second run is clean.
	if err := d.WriteRun(id, 3, data); err != nil {
		t.Fatalf("second WriteRun: %v", err)
	}
}

func TestFaultDeviceFullDisk(t *testing.T) {
	d := NewFaultDevice(NewDisk(64), FaultPlan{MaxBlocks: 2})
	a, b := d.Alloc(), d.Alloc()
	if a == NilBlock || b == NilBlock {
		t.Fatalf("first two allocs should succeed, got %d %d", a, b)
	}
	if id := d.Alloc(); id != NilBlock {
		t.Fatalf("third alloc should fail, got %d", id)
	}
	if id := d.AllocRun(2); id != NilBlock {
		t.Fatalf("AllocRun past capacity should fail, got %d", id)
	}
	var fe *FaultError
	if err := d.Write(NilBlock, []byte("x")); !errors.As(err, &fe) || fe.Kind != KindAllocFail {
		t.Fatalf("write to NilBlock: want alloc-fail fault, got %v", err)
	}
	if _, err := d.Read(NilBlock); !errors.As(err, &fe) || fe.Kind != KindAllocFail {
		t.Fatalf("read of NilBlock: want alloc-fail fault, got %v", err)
	}
	// Freeing makes room again.
	d.Free(a)
	if id := d.Alloc(); id == NilBlock {
		t.Fatalf("alloc after free should succeed")
	}
}

func TestFaultDeviceLatency(t *testing.T) {
	d := NewFaultDevice(NewDisk(64), FaultPlan{Latency: 5 * time.Millisecond})
	id := d.Alloc()
	start := time.Now()
	if err := d.Write(id, []byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := d.Read(id); err != nil {
		t.Fatalf("read: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("latency not injected: two accesses took %v", elapsed)
	}
}

func TestFaultDeviceRunFaults(t *testing.T) {
	under := NewDisk(16)
	d := NewFaultDevice(under, FaultPlan{})
	id := d.AllocRun(3)
	data := bytes.Repeat([]byte{1}, 48)
	if err := d.WriteRun(id, 3, data); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	d.SetPlan(FaultPlan{FailReadBlocks: []BlockID{id + 1}})
	_, err := d.ReadRun(id, 3)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Block != id+1 {
		t.Fatalf("ReadRun: want fault on middle block %d, got %v", id+1, err)
	}
	d.SetPlan(FaultPlan{FlipBlocks: []BlockID{id + 2}, Seed: 3})
	got, err := d.ReadRun(id, 3)
	if err != nil {
		t.Fatalf("ReadRun with flip: %v", err)
	}
	if !bytes.Equal(got[:32], data[:32]) {
		t.Fatalf("unflipped prefix changed")
	}
	if bytes.Equal(got[32:], data[32:]) {
		t.Fatalf("flip on last run block did not land")
	}
	d.SetPlan(FaultPlan{FailWriteBlocks: []BlockID{id + 2}})
	if err := d.WriteRun(id, 3, data); !errors.As(err, &fe) || fe.Block != id+2 {
		t.Fatalf("WriteRun: want fault on %d, got %v", id+2, err)
	}
}

func TestFaultDevicePassThrough(t *testing.T) {
	under := NewDisk(64)
	d := NewFaultDevice(under, FaultPlan{})
	if d.BlockSize() != 64 {
		t.Fatalf("BlockSize = %d", d.BlockSize())
	}
	id := d.Alloc()
	if err := d.Write(id, []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := d.Read(id)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("round trip: %q", got[:5])
	}
	if d.Stats() != under.Stats() {
		t.Fatalf("stats not passed through")
	}
	if d.NumBlocks() != 1 || d.SizeBytes() != 64 {
		t.Fatalf("NumBlocks/SizeBytes wrong: %d %d", d.NumBlocks(), d.SizeBytes())
	}
	d.ResetStats()
	if d.Stats().Total() != 0 {
		t.Fatalf("ResetStats did not reset")
	}
	if d.Under() != Device(under) {
		t.Fatalf("Under() mismatch")
	}
}

func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		KindReadError:  "read-error",
		KindWriteError: "write-error",
		KindTornWrite:  "torn-write",
		KindAllocFail:  "alloc-fail",
		FaultKind(99):  "fault(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestIsIOFault(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{&FaultError{Kind: KindReadError, Op: OpRead, Block: 3}, true},
		{&CorruptBlockError{Block: 7}, true},
		{ErrBadBlock, true},
	}
	for _, c := range cases {
		if got := IsIOFault(c.err); got != c.want {
			t.Errorf("IsIOFault(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// --- ChecksumDisk ---

func TestChecksumRoundTrip(t *testing.T) {
	d := NewChecksumDisk(NewDisk(64))
	if d.BlockSize() != 60 {
		t.Fatalf("payload size = %d, want 60", d.BlockSize())
	}
	id := d.Alloc()
	msg := []byte("spatial keyword search")
	if err := d.Write(id, msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := d.Read(id)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 60 || !bytes.Equal(got[:len(msg)], msg) {
		t.Fatalf("round trip: %q", got)
	}
}

func TestChecksumFreshBlockReadsZero(t *testing.T) {
	d := NewChecksumDisk(NewDisk(64))
	id := d.Alloc()
	got, err := d.Read(id)
	if err != nil {
		t.Fatalf("read of never-written block: %v", err)
	}
	if !allZero(got) {
		t.Fatalf("fresh block not zero: %x", got)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	under := NewDisk(64)
	d := NewChecksumDisk(under)
	id := d.Alloc()
	if err := d.Write(id, []byte("payload")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Flip one payload bit on the raw device, keeping the trailer.
	raw, err := under.Read(id)
	if err != nil {
		t.Fatalf("raw read: %v", err)
	}
	raw[3] ^= 0x10
	if err := under.Write(id, raw); err != nil {
		t.Fatalf("raw write: %v", err)
	}
	_, err = d.Read(id)
	var ce *CorruptBlockError
	if !errors.As(err, &ce) || ce.Block != id {
		t.Fatalf("want *CorruptBlockError{%d}, got %v", id, err)
	}
	if !IsIOFault(err) {
		t.Fatalf("IsIOFault(corrupt) = false")
	}
}

func TestChecksumDetectsTrailerCorruption(t *testing.T) {
	under := NewDisk(64)
	d := NewChecksumDisk(under)
	id := d.Alloc()
	if err := d.Write(id, []byte("payload")); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw, _ := under.Read(id)
	raw[63] ^= 0x01 // trailer byte
	if err := under.Write(id, raw); err != nil {
		t.Fatalf("raw write: %v", err)
	}
	var ce *CorruptBlockError
	if _, err := d.Read(id); !errors.As(err, &ce) {
		t.Fatalf("want corrupt error on trailer damage, got %v", err)
	}
}

func TestChecksumRunRoundTripAndCorruption(t *testing.T) {
	under := NewDisk(32)
	d := NewChecksumDisk(under)
	pbs := d.BlockSize() // 28
	id := d.AllocRun(3)
	data := bytes.Repeat([]byte{0xC3}, 3*pbs)
	if err := d.WriteRun(id, 3, data); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	got, err := d.ReadRun(id, 3)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("run round trip mismatch")
	}
	// Corrupt the middle underlying block.
	raw, _ := under.Read(id + 1)
	raw[5] ^= 0x80
	if err := under.Write(id+1, raw); err != nil {
		t.Fatalf("raw write: %v", err)
	}
	var ce *CorruptBlockError
	if _, err := d.ReadRun(id, 3); !errors.As(err, &ce) || ce.Block != id+1 {
		t.Fatalf("want corrupt error on block %d, got %v", id+1, err)
	}
}

func TestChecksumShortRunPayload(t *testing.T) {
	d := NewChecksumDisk(NewDisk(32))
	id := d.AllocRun(3)
	// Payload covers only 1.5 blocks; the rest must read back as zeros.
	data := bytes.Repeat([]byte{9}, d.BlockSize()*3/2)
	if err := d.WriteRun(id, 3, data); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	got, err := d.ReadRun(id, 3)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("payload mismatch")
	}
	if !allZero(got[len(data):]) {
		t.Fatalf("padding not zero")
	}
}

func TestChecksumRejectsOversizedWrites(t *testing.T) {
	d := NewChecksumDisk(NewDisk(64))
	id := d.Alloc()
	if err := d.Write(id, make([]byte, 61)); !errors.Is(err, ErrBlockTooLarge) {
		t.Fatalf("oversized Write: want ErrBlockTooLarge, got %v", err)
	}
	run := d.AllocRun(2)
	if err := d.WriteRun(run, 2, make([]byte, 121)); !errors.Is(err, ErrBlockTooLarge) {
		t.Fatalf("oversized WriteRun: want ErrBlockTooLarge, got %v", err)
	}
}

func TestChecksumWithFaultDeviceFlip(t *testing.T) {
	// The full stack: a silent bit flip injected below the checksum layer
	// must surface as a typed corruption error, never as wrong data.
	fd := NewFaultDevice(NewDisk(64), FaultPlan{Seed: 11, FlipReadAt: []uint64{2}})
	d := NewChecksumDisk(fd)
	id := d.Alloc()
	if err := d.Write(id, []byte("important bytes")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := d.Read(id); err != nil { // read #1: clean
		t.Fatalf("read 1: %v", err)
	}
	_, err := d.Read(id) // read #2: flipped below us
	var ce *CorruptBlockError
	if !errors.As(err, &ce) || ce.Block != id {
		t.Fatalf("want *CorruptBlockError{%d} from flipped read, got %v", id, err)
	}
}

func TestChecksumPassThrough(t *testing.T) {
	under := NewDisk(64)
	d := NewChecksumDisk(under)
	id := d.Alloc()
	_ = d.Write(id, []byte("x"))
	if d.Stats() != under.Stats() || d.NumBlocks() != under.NumBlocks() || d.SizeBytes() != under.SizeBytes() {
		t.Fatalf("pass-through accessors diverge")
	}
	d.ResetStats()
	if d.Stats().Total() != 0 {
		t.Fatalf("ResetStats not forwarded")
	}
	if d.Under() != Device(under) {
		t.Fatalf("Under() mismatch")
	}
	d.Free(id)
	if under.NumBlocks() != 0 {
		t.Fatalf("Free not forwarded")
	}
}

func TestChecksumTooSmallBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for tiny block size")
		}
	}()
	NewChecksumDisk(NewDisk(4))
}

// --- CachedDisk regressions ---

func TestCachedDiskDoesNotCacheFailedRead(t *testing.T) {
	under := NewDisk(64)
	id := under.Alloc()
	if err := under.Write(id, []byte("good")); err != nil {
		t.Fatalf("write: %v", err)
	}
	fd := NewFaultDevice(under, FaultPlan{FailReadAt: []uint64{1}})
	c := NewCachedDisk(fd, 4)
	if _, err := c.Read(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("first read should fail injected, got %v", err)
	}
	// The failed read must not have populated the pool: the next read goes
	// to the device (now clean) and returns the real data.
	got, err := c.Read(id)
	if err != nil {
		t.Fatalf("second read: %v", err)
	}
	if string(got[:4]) != "good" {
		t.Fatalf("second read returned %q", got[:4])
	}
	if _, hits, _ := c.HitRate(); hits != 0 {
		t.Fatalf("failed read was served from cache (hits=%d)", hits)
	}
}

func TestCachedDiskInvalidatesOnFree(t *testing.T) {
	under := NewDisk(64)
	c := NewCachedDisk(under, 4)
	id := c.Alloc()
	if err := c.Write(id, []byte("cached")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.Read(id); err != nil { // warm the pool
		t.Fatalf("read: %v", err)
	}
	c.Free(id)
	// Reallocation recycles the same ID on Disk; the fresh block must read
	// as zeros, not the stale cached bytes.
	id2 := c.Alloc()
	if id2 != id {
		t.Fatalf("expected recycled block ID %d, got %d", id, id2)
	}
	got, err := c.Read(id2)
	if err != nil {
		t.Fatalf("read recycled: %v", err)
	}
	if !allZero(got) {
		t.Fatalf("stale cache served after Free: %q", got)
	}
}

func TestCachedDiskInvalidatesOnFailedWrite(t *testing.T) {
	under := NewDisk(64)
	fd := NewFaultDevice(under, FaultPlan{})
	c := NewCachedDisk(fd, 4)
	id := c.Alloc()
	if err := c.Write(id, []byte("v1")); err != nil {
		t.Fatalf("write v1: %v", err)
	}
	if _, err := c.Read(id); err != nil { // warm the pool with v1
		t.Fatalf("read: %v", err)
	}
	fd.SetPlan(FaultPlan{FailWriteBlocks: []BlockID{id}})
	if err := c.Write(id, []byte("v2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write v2 should fail, got %v", err)
	}
	fd.SetPlan(FaultPlan{})
	// After a failed write the pool entry is gone; the next read reflects
	// the device's actual state (still v1 here).
	got, err := c.Read(id)
	if err != nil {
		t.Fatalf("read after failed write: %v", err)
	}
	if string(got[:2]) != "v1" {
		t.Fatalf("read %q after failed write, want device state v1", got[:2])
	}
}

func TestCachedDiskInvalidatesRunOnTornWrite(t *testing.T) {
	under := NewDisk(16)
	fd := NewFaultDevice(under, FaultPlan{})
	c := NewCachedDisk(fd, 8)
	id := c.AllocRun(3)
	v1 := bytes.Repeat([]byte{1}, 48)
	if err := c.WriteRun(id, 3, v1); err != nil {
		t.Fatalf("WriteRun v1: %v", err)
	}
	// Torn second write: the first block lands on the device, the rest do
	// not. All three cached copies must be dropped, so reads reflect the
	// true (mixed) device state rather than either full version.
	fd.SetPlan(FaultPlan{TornWriteAt: []uint64{2}})
	v2 := bytes.Repeat([]byte{2}, 48)
	if err := c.WriteRun(id, 3, v2); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn WriteRun should fail, got %v", err)
	}
	fd.SetPlan(FaultPlan{})
	got, err := c.ReadRun(id, 3)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	want := append(bytes.Repeat([]byte{2}, 16), bytes.Repeat([]byte{1}, 32)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("cache masked torn write:\n got %x\nwant %x", got, want)
	}
}

// --- FileDisk.SyncMeta ---

func TestFileDiskSyncMeta(t *testing.T) {
	path := t.TempDir() + "/disk.db"
	d, err := CreateFileDisk(path, 64)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := d.Alloc()
	if err := d.Write(id, []byte("persisted")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := d.SyncMeta(); err != nil {
		t.Fatalf("SyncMeta: %v", err)
	}
	// A copy of the file taken now must open with the allocator state
	// intact, without the original ever being closed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read file: %v", err)
	}
	copyPath := t.TempDir() + "/copy.db"
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatalf("write copy: %v", err)
	}
	d2, err := OpenFileDisk(copyPath)
	if err != nil {
		t.Fatalf("open copy: %v", err)
	}
	defer d2.Close()
	got, err := d2.Read(id)
	if err != nil {
		t.Fatalf("read from copy: %v", err)
	}
	if string(got[:9]) != "persisted" {
		t.Fatalf("copy lost data: %q", got[:9])
	}
	d.Close()
}
