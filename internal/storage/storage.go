// Package storage simulates the disk that every index structure in this
// library lives on.
//
// The paper evaluates all structures (R-Tree, IR²-Tree, MIR²-Tree, inverted
// index, and the object file) as disk-resident: "each R-Tree node takes a
// whole disk block; hence access to a node requires one disk I/O", and the
// evaluation reports random and sequential disk block accesses separately
// (Figures 9b/12b). This package provides a block device with exactly that
// accounting:
//
//   - fixed-size blocks (default 4,096 bytes, the paper's block size);
//   - an access to block b is counted as sequential when the immediately
//     preceding access touched block b-1, and random otherwise — matching
//     how a disk arm services a run of consecutive blocks with one seek;
//   - a cost model that converts the two counters into a modeled execution
//     time, keeping the paper's observation that "execution time is
//     primarily proportional to the random access numbers" while making
//     results machine-independent.
//
// Blocks hold real bytes: index nodes and objects are serialized into them,
// so structure sizes (Table 2) fall out of the allocator rather than being
// estimated.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// DefaultBlockSize is the disk block size used throughout the paper's
// evaluation (Section 6: "the disk block size is 4,096").
const DefaultBlockSize = 4096

// BlockID identifies a block on a Disk. Valid IDs start at 1; 0 is the nil
// block, so the zero value of on-disk pointers is unambiguous.
type BlockID uint64

// NilBlock is the zero BlockID, used as a null pointer on disk.
const NilBlock BlockID = 0

// ErrBadBlock is returned when reading or writing a block that was never
// allocated (or was freed).
var ErrBadBlock = errors.New("storage: no such block")

// ErrBlockTooLarge is returned when writing more bytes than fit in a block.
var ErrBlockTooLarge = errors.New("storage: data exceeds block size")

// Op distinguishes the two I/O directions for fault injection and tracing.
type Op int

const (
	// OpRead is a block read.
	OpRead Op = iota
	// OpWrite is a block write.
	OpWrite
)

// String returns "read" or "write".
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Stats holds the I/O counters of a Disk. Counters are cumulative since the
// last ResetStats.
type Stats struct {
	RandomReads      uint64 // reads that required a seek
	SequentialReads  uint64 // reads of the block following the previous access
	RandomWrites     uint64 // writes that required a seek
	SequentialWrites uint64 // writes of the block following the previous access
}

// Reads returns the total number of block reads.
func (s Stats) Reads() uint64 { return s.RandomReads + s.SequentialReads }

// Writes returns the total number of block writes.
func (s Stats) Writes() uint64 { return s.RandomWrites + s.SequentialWrites }

// Random returns the total number of random (seeking) accesses.
func (s Stats) Random() uint64 { return s.RandomReads + s.RandomWrites }

// Sequential returns the total number of sequential accesses.
func (s Stats) Sequential() uint64 { return s.SequentialReads + s.SequentialWrites }

// Total returns the total number of block accesses.
func (s Stats) Total() uint64 { return s.Random() + s.Sequential() }

// Sub returns the counter deltas s - t. It is how callers meter a single
// operation: snapshot before, snapshot after, subtract.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		RandomReads:      s.RandomReads - t.RandomReads,
		SequentialReads:  s.SequentialReads - t.SequentialReads,
		RandomWrites:     s.RandomWrites - t.RandomWrites,
		SequentialWrites: s.SequentialWrites - t.SequentialWrites,
	}
}

// Add returns the counter sums s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		RandomReads:      s.RandomReads + t.RandomReads,
		SequentialReads:  s.SequentialReads + t.SequentialReads,
		RandomWrites:     s.RandomWrites + t.RandomWrites,
		SequentialWrites: s.SequentialWrites + t.SequentialWrites,
	}
}

// String formats the stats compactly, e.g. "rnd=12 seq=3 (r=10/5 w=2/-2)".
func (s Stats) String() string {
	return fmt.Sprintf("random=%d sequential=%d (reads %d+%d, writes %d+%d)",
		s.Random(), s.Sequential(),
		s.RandomReads, s.SequentialReads, s.RandomWrites, s.SequentialWrites)
}

// CostModel converts block-access counters into a modeled elapsed time.
// The default approximates the paper's 10,000 RPM drive: a random access
// pays a full seek + rotational delay, a sequential access only the
// transfer of one more block.
type CostModel struct {
	RandomAccess     time.Duration // seek + rotate + transfer for one block
	SequentialAccess time.Duration // transfer for one consecutive block
}

// DefaultCostModel approximates a 2008-era 10k RPM disk: ~8 ms per random
// access, ~60 µs to stream one additional 4 KB block (~70 MB/s media rate).
func DefaultCostModel() CostModel {
	return CostModel{
		RandomAccess:     8 * time.Millisecond,
		SequentialAccess: 60 * time.Microsecond,
	}
}

// Time returns the modeled elapsed time for the given access counts.
func (c CostModel) Time(s Stats) time.Duration {
	return time.Duration(s.Random())*c.RandomAccess +
		time.Duration(s.Sequential())*c.SequentialAccess
}

// FaultFunc is a fault-injection hook. If it returns a non-nil error for an
// access, the access fails with that error and no data is transferred.
type FaultFunc func(op Op, id BlockID) error

// Disk is a simulated block device. It is safe for concurrent use; counter
// updates and data accesses are serialized by an internal mutex (the
// sequential-access detection inherently requires a global notion of "the
// previous access").
type Disk struct {
	blockSize int

	mu     sync.Mutex
	blocks map[BlockID][]byte
	next   BlockID
	last   BlockID // block touched by the most recent access; 0 = none
	stats  Stats
	fault  FaultFunc
	freed  []BlockID
}

// NewDisk returns an empty disk with the given block size.
// It panics if blockSize is not positive.
func NewDisk(blockSize int) *Disk {
	if blockSize <= 0 {
		//skvet:ignore nopanic documented constructor invariant
		panic(fmt.Sprintf("storage: invalid block size %d", blockSize))
	}
	return &Disk{
		blockSize: blockSize,
		blocks:    make(map[BlockID][]byte),
		next:      1,
	}
}

// BlockSize returns the size of each block in bytes.
func (d *Disk) BlockSize() int { return d.blockSize }

// SetFault installs (or clears, with nil) a fault-injection hook.
func (d *Disk) SetFault(f FaultFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

// Alloc reserves one new block and returns its ID. Freshly allocated blocks
// read as zero bytes. Allocation itself performs no I/O.
func (d *Disk) Alloc() BlockID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocLocked()
}

// AllocRun reserves n consecutive blocks and returns the ID of the first.
// Multi-block index nodes use contiguous runs so reading a whole node costs
// one random access plus n-1 sequential accesses, matching the paper's
// treatment of IR²-Tree nodes that "typically require two disk blocks".
func (d *Disk) AllocRun(n int) BlockID {
	if n <= 0 {
		//skvet:ignore nopanic documented allocator invariant: a non-positive run is a caller logic error
		panic(fmt.Sprintf("storage: invalid run length %d", n))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	first := d.next
	for i := 0; i < n; i++ {
		id := d.next
		d.next++
		d.blocks[id] = nil // lazily materialized zero block
	}
	return first
}

func (d *Disk) allocLocked() BlockID {
	if n := len(d.freed); n > 0 {
		id := d.freed[n-1]
		d.freed = d.freed[:n-1]
		d.blocks[id] = nil
		return id
	}
	id := d.next
	d.next++
	d.blocks[id] = nil
	return id
}

// Free releases a block. Freed blocks may be recycled by later Alloc calls
// (but never split a run allocated with AllocRun).
func (d *Disk) Free(id BlockID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.blocks[id]; ok {
		delete(d.blocks, id)
		d.freed = append(d.freed, id)
	}
}

// Read returns a copy of the block's contents, counting one read access.
func (d *Disk) Read(id BlockID) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fault != nil {
		if err := d.fault(OpRead, id); err != nil {
			return nil, err
		}
	}
	data, ok := d.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: read %d", ErrBadBlock, id)
	}
	d.account(id, OpRead)
	out := make([]byte, d.blockSize)
	copy(out, data)
	return out, nil
}

// ReadRun reads n consecutive blocks starting at id into a single buffer,
// counting one random access and n-1 sequential accesses (assuming the
// previous access did not already position the head just before id).
func (d *Disk) ReadRun(id BlockID, n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("storage: invalid run length %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, n*d.blockSize)
	for i := 0; i < n; i++ {
		b := id + BlockID(i)
		if d.fault != nil {
			if err := d.fault(OpRead, b); err != nil {
				return nil, err
			}
		}
		data, ok := d.blocks[b]
		if !ok {
			return nil, fmt.Errorf("%w: read %d", ErrBadBlock, b)
		}
		d.account(b, OpRead)
		copy(out[i*d.blockSize:], data)
	}
	return out, nil
}

// ReadRunInto reads n consecutive blocks starting at id into dst, which must
// hold at least n blocks' worth of bytes. Accounting and fault injection are
// identical to ReadRun — per block, in order — the only difference is that
// the caller owns the buffer, so a warm read path can reuse one scratch
// buffer across queries instead of allocating per node. With n = 1 it is the
// allocation-free equivalent of Read.
func (d *Disk) ReadRunInto(id BlockID, n int, dst []byte) error {
	if n <= 0 {
		return fmt.Errorf("storage: invalid run length %d", n)
	}
	if len(dst) < n*d.blockSize {
		return fmt.Errorf("storage: short buffer %d for %d-block run", len(dst), n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < n; i++ {
		b := id + BlockID(i)
		if d.fault != nil {
			if err := d.fault(OpRead, b); err != nil {
				return err
			}
		}
		data, ok := d.blocks[b]
		if !ok {
			return fmt.Errorf("%w: read %d", ErrBadBlock, b)
		}
		d.account(b, OpRead)
		region := dst[i*d.blockSize : (i+1)*d.blockSize]
		clear(region[copy(region, data):])
	}
	return nil
}

// Write stores data into the block, counting one write access. Writing fewer
// than blockSize bytes zero-fills the remainder; writing more is an error.
func (d *Disk) Write(id BlockID, data []byte) error {
	if len(data) > d.blockSize {
		return fmt.Errorf("%w: %d > %d", ErrBlockTooLarge, len(data), d.blockSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fault != nil {
		if err := d.fault(OpWrite, id); err != nil {
			return err
		}
	}
	if _, ok := d.blocks[id]; !ok {
		return fmt.Errorf("%w: write %d", ErrBadBlock, id)
	}
	d.account(id, OpWrite)
	buf := make([]byte, len(data))
	copy(buf, data)
	d.blocks[id] = buf
	return nil
}

// WriteRun writes data across n consecutive blocks starting at id, counting
// one random access and n-1 sequential accesses.
func (d *Disk) WriteRun(id BlockID, n int, data []byte) error {
	if len(data) > n*d.blockSize {
		return fmt.Errorf("%w: %d > %d", ErrBlockTooLarge, len(data), n*d.blockSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < n; i++ {
		b := id + BlockID(i)
		if d.fault != nil {
			if err := d.fault(OpWrite, b); err != nil {
				return err
			}
		}
		if _, ok := d.blocks[b]; !ok {
			return fmt.Errorf("%w: write %d", ErrBadBlock, b)
		}
		d.account(b, OpWrite)
		lo := i * d.blockSize
		hi := lo + d.blockSize
		if lo >= len(data) {
			d.blocks[b] = nil
			continue
		}
		if hi > len(data) {
			hi = len(data)
		}
		buf := make([]byte, hi-lo)
		copy(buf, data[lo:hi])
		d.blocks[b] = buf
	}
	return nil
}

// account records one access to block id, classifying it as sequential when
// it immediately follows the previously accessed block. Callers must hold mu.
func (d *Disk) account(id BlockID, op Op) {
	seq := d.last != 0 && id == d.last+1
	d.last = id
	switch {
	case op == OpRead && seq:
		d.stats.SequentialReads++
	case op == OpRead:
		d.stats.RandomReads++
	case seq:
		d.stats.SequentialWrites++
	default:
		d.stats.RandomWrites++
	}
}

// Stats returns a snapshot of the access counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the access counters and forgets the head position, so
// the next access is counted as random.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.last = 0
}

// NumBlocks returns the number of currently allocated blocks.
func (d *Disk) NumBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// SizeBytes returns the total allocated size in bytes (blocks × block size).
// This is the on-disk footprint used for Table 2.
func (d *Disk) SizeBytes() int64 {
	return int64(d.NumBlocks()) * int64(d.blockSize)
}

// SizeMB returns the allocated size in megabytes (10^6 bytes, as the paper
// reports sizes).
func (d *Disk) SizeMB() float64 {
	return float64(d.SizeBytes()) / 1e6
}
