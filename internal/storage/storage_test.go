package storage

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestAllocReadWriteRoundTrip(t *testing.T) {
	d := NewDisk(64)
	id := d.Alloc()
	if id == NilBlock {
		t.Fatal("Alloc returned nil block")
	}
	payload := []byte("hello, disk")
	if err := d.Write(id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("Read returned %d bytes, want full block of 64", len(got))
	}
	if string(got[:len(payload)]) != string(payload) {
		t.Errorf("Read = %q, want prefix %q", got[:len(payload)], payload)
	}
	for _, b := range got[len(payload):] {
		if b != 0 {
			t.Fatal("tail of short write not zero-filled")
		}
	}
}

func TestReadUnallocatedBlockFails(t *testing.T) {
	d := NewDisk(64)
	if _, err := d.Read(42); !errors.Is(err, ErrBadBlock) {
		t.Errorf("Read of unallocated block: err = %v, want ErrBadBlock", err)
	}
	if err := d.Write(42, []byte("x")); !errors.Is(err, ErrBadBlock) {
		t.Errorf("Write of unallocated block: err = %v, want ErrBadBlock", err)
	}
}

func TestWriteTooLargeFails(t *testing.T) {
	d := NewDisk(8)
	id := d.Alloc()
	if err := d.Write(id, make([]byte, 9)); !errors.Is(err, ErrBlockTooLarge) {
		t.Errorf("oversized write: err = %v, want ErrBlockTooLarge", err)
	}
}

func TestFreshBlockReadsZero(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	got, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh block not zeroed")
		}
	}
}

func TestSequentialAccounting(t *testing.T) {
	d := NewDisk(32)
	first := d.AllocRun(4)

	// Reading the run in order: 1 random + 3 sequential.
	for i := 0; i < 4; i++ {
		if _, err := d.Read(first + BlockID(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.RandomReads != 1 || s.SequentialReads != 3 {
		t.Errorf("in-order reads: %+v, want 1 random + 3 sequential", s)
	}

	d.ResetStats()
	// Reading the run in reverse: all random.
	for i := 3; i >= 0; i-- {
		if _, err := d.Read(first + BlockID(i)); err != nil {
			t.Fatal(err)
		}
	}
	s = d.Stats()
	if s.RandomReads != 4 || s.SequentialReads != 0 {
		t.Errorf("reverse reads: %+v, want 4 random", s)
	}

	d.ResetStats()
	// Re-reading the same block is a random access (head already past it).
	if _, err := d.Read(first); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(first); err != nil {
		t.Fatal(err)
	}
	s = d.Stats()
	if s.RandomReads != 2 {
		t.Errorf("repeated read: %+v, want 2 random", s)
	}
}

func TestReadRunAccounting(t *testing.T) {
	d := NewDisk(16)
	first := d.AllocRun(3)
	if err := d.WriteRun(first, 3, []byte("0123456789abcdefGHIJKLMNOPQRSTUVxyz")); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	data, err := d.ReadRun(first, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 48 {
		t.Fatalf("ReadRun length = %d, want 48", len(data))
	}
	if string(data[:16]) != "0123456789abcdef" || string(data[16:32]) != "GHIJKLMNOPQRSTUV" {
		t.Errorf("ReadRun data mismatch: %q", data[:32])
	}
	s := d.Stats()
	if s.RandomReads != 1 || s.SequentialReads != 2 {
		t.Errorf("ReadRun stats = %+v, want 1 random + 2 sequential", s)
	}
}

func TestWriteRunAccountingAndZeroFill(t *testing.T) {
	d := NewDisk(16)
	first := d.AllocRun(2)
	d.ResetStats()
	if err := d.WriteRun(first, 2, []byte("short")); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.RandomWrites != 1 || s.SequentialWrites != 1 {
		t.Errorf("WriteRun stats = %+v, want 1 random + 1 sequential write", s)
	}
	data, err := d.ReadRun(first, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:5]) != "short" {
		t.Errorf("data = %q", data[:5])
	}
	for _, b := range data[5:] {
		if b != 0 {
			t.Fatal("remainder not zero-filled")
		}
	}
	if err := d.WriteRun(first, 2, make([]byte, 33)); !errors.Is(err, ErrBlockTooLarge) {
		t.Errorf("oversized WriteRun err = %v", err)
	}
}

func TestFreeAndRecycle(t *testing.T) {
	d := NewDisk(16)
	a := d.Alloc()
	if err := d.Write(a, []byte("data")); err != nil {
		t.Fatal(err)
	}
	d.Free(a)
	if _, err := d.Read(a); !errors.Is(err, ErrBadBlock) {
		t.Errorf("read after free: err = %v, want ErrBadBlock", err)
	}
	b := d.Alloc()
	if b != a {
		t.Errorf("freed block not recycled: got %d, want %d", b, a)
	}
	got, err := d.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		if c != 0 {
			t.Fatal("recycled block leaks previous contents")
		}
	}
}

func TestNumBlocksAndSize(t *testing.T) {
	d := NewDisk(4096)
	for i := 0; i < 10; i++ {
		d.Alloc()
	}
	if d.NumBlocks() != 10 {
		t.Errorf("NumBlocks = %d", d.NumBlocks())
	}
	if d.SizeBytes() != 10*4096 {
		t.Errorf("SizeBytes = %d", d.SizeBytes())
	}
	if mb := d.SizeMB(); mb != 10*4096/1e6 {
		t.Errorf("SizeMB = %g", mb)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{RandomReads: 10, SequentialReads: 5, RandomWrites: 3, SequentialWrites: 2}
	b := Stats{RandomReads: 4, SequentialReads: 1, RandomWrites: 2, SequentialWrites: 2}
	diff := a.Sub(b)
	if diff.RandomReads != 6 || diff.SequentialReads != 4 || diff.RandomWrites != 1 || diff.SequentialWrites != 0 {
		t.Errorf("Sub = %+v", diff)
	}
	sum := diff.Add(b)
	if sum != a {
		t.Errorf("Add(Sub) != original: %+v", sum)
	}
	if a.Reads() != 15 || a.Writes() != 5 || a.Random() != 13 || a.Sequential() != 7 || a.Total() != 20 {
		t.Errorf("aggregates wrong: %+v", a)
	}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{RandomAccess: 10 * time.Millisecond, SequentialAccess: 1 * time.Millisecond}
	s := Stats{RandomReads: 3, SequentialReads: 5, RandomWrites: 1, SequentialWrites: 1}
	if got, want := cm.Time(s), 46*time.Millisecond; got != want {
		t.Errorf("Time = %v, want %v", got, want)
	}
	def := DefaultCostModel()
	if def.RandomAccess <= def.SequentialAccess {
		t.Error("default cost model should make random accesses dominant")
	}
}

func TestFaultInjection(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	boom := errors.New("boom")
	d.SetFault(func(op Op, b BlockID) error {
		if op == OpRead && b == id {
			return boom
		}
		return nil
	})
	if _, err := d.Read(id); !errors.Is(err, boom) {
		t.Errorf("fault not propagated: %v", err)
	}
	// Writes still work, and stats did not count the failed read.
	if err := d.Write(id, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reads() != 0 {
		t.Errorf("failed read was counted: %+v", s)
	}
	d.SetFault(nil)
	if _, err := d.Read(id); err != nil {
		t.Errorf("read after clearing fault: %v", err)
	}
}

func TestMeter(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	if _, err := d.Read(id); err != nil {
		t.Fatal(err)
	}
	m := StartMeter(d)
	if _, err := d.Read(id); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(id); err != nil {
		t.Fatal(err)
	}
	got := m.Stop()
	if got.Reads() != 2 {
		t.Errorf("meter reads = %d, want 2", got.Reads())
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("Op.String mismatch")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{RandomReads: 1, SequentialReads: 2, RandomWrites: 3, SequentialWrites: 4}
	want := fmt.Sprintf("random=%d sequential=%d (reads %d+%d, writes %d+%d)", 4, 6, 1, 2, 3, 4)
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}

func TestCachedDiskHits(t *testing.T) {
	d := NewDisk(16)
	c := NewCachedDisk(d, 2)
	a, b, e := c.Alloc(), c.Alloc(), c.Alloc()
	for _, id := range []BlockID{a, b, e} {
		if err := c.Write(id, []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	c.ResetStats()

	// b and e are the two most recently written → cached. a was evicted.
	if _, err := c.Read(b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(e); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Reads(); got != 0 {
		t.Errorf("cached reads hit the disk %d times", got)
	}
	if _, err := c.Read(a); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Reads(); got != 1 {
		t.Errorf("miss should read disk once, got %d", got)
	}
	rate, hits, misses := c.HitRate()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
	if rate < 0.66 || rate > 0.67 {
		t.Errorf("rate = %g", rate)
	}
}

func TestCachedDiskCorrectness(t *testing.T) {
	d := NewDisk(16)
	c := NewCachedDisk(d, 4)
	id := c.AllocRun(3)
	if err := c.WriteRun(id, 3, []byte("0123456789abcdefGHIJKLMNOPQRSTUVxy")); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadRun(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:16]) != "0123456789abcdef" || string(got[32:34]) != "xy" {
		t.Errorf("ReadRun through cache = %q", got)
	}
	// Overwrite through cache and re-read.
	if err := c.Write(id, []byte("NEW")); err != nil {
		t.Fatal(err)
	}
	one, err := c.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(one[:3]) != "NEW" {
		t.Errorf("Read after Write = %q", one[:3])
	}
	// Underlying disk must agree (write-through).
	raw, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw[:3]) != "NEW" {
		t.Errorf("underlying disk = %q", raw[:3])
	}
}

func TestCachedDiskFree(t *testing.T) {
	d := NewDisk(16)
	c := NewCachedDisk(d, 4)
	id := c.Alloc()
	if err := c.Write(id, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.Free(id)
	if _, err := c.Read(id); !errors.Is(err, ErrBadBlock) {
		t.Errorf("read of freed block served from cache: %v", err)
	}
}

func TestConcurrentDiskAccess(t *testing.T) {
	d := NewDisk(64)
	const workers = 8
	ids := make([]BlockID, workers)
	for i := range ids {
		ids[i] = d.Alloc()
	}
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			for j := 0; j < 100; j++ {
				if err := d.Write(ids[i], []byte{byte(i)}); err != nil {
					done <- err
					return
				}
				data, err := d.Read(ids[i])
				if err != nil {
					done <- err
					return
				}
				if data[0] != byte(i) {
					done <- fmt.Errorf("worker %d read %d", i, data[0])
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().Total(); got != workers*200 {
		t.Errorf("total accesses = %d, want %d", got, workers*200)
	}
}
