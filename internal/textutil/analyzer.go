package textutil

// Analyzer is a configurable text-analysis pipeline: tokenization (always),
// optional stopword removal, optional Porter stemming. Index and query text
// must pass through the *same* analyzer — a stemmed index probed with
// unstemmed keywords misses — so the analyzer lives in the index options
// (core.Options.Analyzer / spatialkeyword.Config) rather than being applied
// ad hoc.
//
// The zero value is the plain pipeline (tokenize only), which matches the
// paper's experiments.
type Analyzer struct {
	// Stopwords are dropped after tokenization. Nil keeps every token.
	Stopwords map[string]struct{}
	// Stemming applies the Porter stemmer to every surviving token.
	Stemming bool
}

// DefaultStopwords returns a standard small English stopword set.
func DefaultStopwords() map[string]struct{} {
	words := []string{
		"a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
		"if", "in", "into", "is", "it", "no", "not", "of", "on", "or",
		"such", "that", "the", "their", "then", "there", "these", "they",
		"this", "to", "was", "will", "with",
	}
	set := make(map[string]struct{}, len(words))
	for _, w := range words {
		set[w] = struct{}{}
	}
	return set
}

// Tokens runs the full pipeline over a document, preserving order and
// duplicates (term frequencies).
func (a *Analyzer) Tokens(text string) []string {
	tokens := Tokenize(text)
	if a == nil || (a.Stopwords == nil && !a.Stemming) {
		return tokens
	}
	out := tokens[:0]
	for _, tok := range tokens {
		if a.Stopwords != nil {
			if _, stop := a.Stopwords[tok]; stop {
				continue
			}
		}
		if a.Stemming {
			tok = Stem(tok)
		}
		out = append(out, tok)
	}
	return out
}

// Unique returns the distinct pipeline terms of a document in
// first-occurrence order — what gets hashed into signatures and posted
// into inverted indexes.
func (a *Analyzer) Unique(text string) []string {
	tokens := a.Tokens(text)
	seen := make(map[string]struct{}, len(tokens))
	uniq := tokens[:0]
	for _, tok := range tokens {
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		uniq = append(uniq, tok)
	}
	return uniq
}

// plain reports whether the pipeline is plain tokenization (no stopwords,
// no stemming) — the configurations whose scans can skip token
// materialization entirely.
func (a *Analyzer) plain() bool {
	return a == nil || (a.Stopwords == nil && !a.Stemming)
}

// TermFreqs returns the pipeline term-frequency map of a document.
func (a *Analyzer) TermFreqs(text string) map[string]int {
	tokens := a.Tokens(text)
	tf := make(map[string]int, len(tokens))
	for _, tok := range tokens {
		tf[tok]++
	}
	return tf
}

// Keyword normalizes one query keyword through the pipeline ("" if it
// dissolves — punctuation-only or a stopword).
func (a *Analyzer) Keyword(keyword string) string {
	toks := a.Tokens(keyword)
	if len(toks) == 0 {
		return ""
	}
	return toks[0]
}

// Keywords normalizes a keyword list, dropping empties and duplicates while
// preserving order.
func (a *Analyzer) Keywords(keywords []string) []string {
	out := make([]string, 0, len(keywords))
	seen := make(map[string]struct{}, len(keywords))
	for _, w := range keywords {
		n := a.Keyword(w)
		if n == "" {
			continue
		}
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

// ContainsAll reports whether the document contains every query keyword
// under the pipeline's term model. Keywords are raw user input (they pass
// through the pipeline here); for already-normalized terms use
// ContainsTerms — stemming is not idempotent, so normalizing twice is a
// correctness bug.
func (a *Analyzer) ContainsAll(text string, keywords []string) bool {
	if len(keywords) == 0 {
		return true
	}
	terms := make([]string, len(keywords))
	for i, w := range keywords {
		terms[i] = a.Keyword(w)
	}
	return a.ContainsTerms(text, terms)
}

// ContainsTerms reports whether the document contains every given
// already-normalized pipeline term. Allocation-free on the plain pipeline
// (the per-candidate false-positive filter of every top-k query runs here).
func (a *Analyzer) ContainsTerms(text string, terms []string) bool {
	if len(terms) == 0 {
		return true
	}
	if a.plain() && len(terms) < 64 {
		return containsTermsScan(text, terms)
	}
	set := make(map[string]struct{})
	for _, tok := range a.Tokens(text) {
		set[tok] = struct{}{}
	}
	for _, term := range terms {
		if _, ok := set[term]; !ok {
			return false
		}
	}
	return true
}

// TermFreqsInto fills counts[i] with the pipeline term frequency of terms[i]
// in text. Terms must already be normalized through this pipeline; counts
// must have at least len(terms) elements. Allocation-free on the plain
// pipeline — the ranked query's per-candidate tf-idf scoring runs here.
func (a *Analyzer) TermFreqsInto(counts []int, text string, terms []string) {
	if a.plain() {
		CountTermsInto(counts, text, terms)
		return
	}
	tf := a.TermFreqs(text)
	for i, term := range terms {
		counts[i] = tf[term]
	}
}
