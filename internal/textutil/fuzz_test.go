package textutil

import (
	"strings"
	"testing"
)

// FuzzTokenize: the tokenizer must never panic, always emit non-empty
// lowercase alphanumeric tokens, and agree with ContainsAll on its own
// output.
func FuzzTokenize(f *testing.F) {
	f.Add("wireless Internet, pool, golf course")
	f.Add("ünïcödé wörds and 123 numbers")
	f.Add("\x00\xff\xfe broken utf8 \xc3\x28")
	f.Add(strings.Repeat("pool ", 1000))
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lowercase", tok)
			}
		}
		uniq := UniqueTokens(text)
		if len(uniq) > len(tokens) {
			t.Fatal("more unique tokens than tokens")
		}
		if !ContainsAll(text, uniq) {
			t.Fatal("document does not contain its own tokens")
		}
		// Tokenization is idempotent: tokenizing the joined tokens yields
		// the same tokens.
		again := Tokenize(strings.Join(tokens, " "))
		if len(again) != len(tokens) {
			t.Fatalf("not idempotent: %d vs %d tokens", len(again), len(tokens))
		}
		for i := range tokens {
			if again[i] != tokens[i] {
				t.Fatalf("token %d changed: %q vs %q", i, tokens[i], again[i])
			}
		}
	})
}
