package textutil

// Porter stemming (M.F. Porter, "An algorithm for suffix stripping",
// Program 14(3), 1980) — the classic IR normalization step referenced by
// the paper's IR background [Sin01]. Stemming conflates inflected forms
// ("fishing", "fished", "fisher" → "fish"), which for this library means a
// query keyword matches every inflection of the indexed words: fewer
// distinct terms in signatures and posting lists, at the price of some
// precision. The Analyzer type (analyzer.go) makes it an opt-in stage.

// Stem returns the Porter stem of a single lowercase word. Words of length
// <= 2 are returned unchanged, per the algorithm.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isConsonant reports whether w[i] is a consonant in Porter's sense:
// a, e, i, o, u are vowels; y is a vowel when preceded by a consonant.
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	default:
		return true
	}
}

// measure returns m, the number of vowel-consonant sequences in w[:upTo]:
// [C](VC)^m[V].
func measure(w []byte, upTo int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < upTo && isConsonant(w, i) {
		i++
	}
	for i < upTo {
		// In a vowel run.
		for i < upTo && !isConsonant(w, i) {
			i++
		}
		if i >= upTo {
			break
		}
		m++
		for i < upTo && isConsonant(w, i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether w[:upTo] contains a vowel.
func hasVowel(w []byte, upTo int) bool {
	for i := 0; i < upTo; i++ {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleC reports whether w ends with a double consonant.
func endsDoubleC(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isConsonant(w, n-1)
}

// endsCVC reports whether w[:upTo] ends consonant-vowel-consonant with the
// final consonant not w, x, or y.
func endsCVC(w []byte, upTo int) bool {
	if upTo < 3 {
		return false
	}
	i := upTo - 1
	if !isConsonant(w, i) || isConsonant(w, i-1) || !isConsonant(w, i-2) {
		return false
	}
	switch w[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether w ends in s.
func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix returns w with suffix old replaced by new (caller must have
// checked hasSuffix).
func replaceSuffix(w []byte, old, new string) []byte {
	return append(w[:len(w)-len(old)], new...)
}

// stemRoot returns the length of w without the given suffix.
func stemRoot(w []byte, suffix string) int { return len(w) - len(suffix) }

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return replaceSuffix(w, "sses", "ss")
	case hasSuffix(w, "ies"):
		return replaceSuffix(w, "ies", "i")
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w, stemRoot(w, "eed")) > 0 {
			return w[:len(w)-1] // eed -> ee
		}
		return w
	}
	applied := false
	switch {
	case hasSuffix(w, "ed") && hasVowel(w, stemRoot(w, "ed")):
		w = w[:len(w)-2]
		applied = true
	case hasSuffix(w, "ing") && hasVowel(w, stemRoot(w, "ing")):
		w = w[:len(w)-3]
		applied = true
	}
	if !applied {
		return w
	}
	switch {
	case hasSuffix(w, "at"):
		return append(w, 'e') // at -> ate
	case hasSuffix(w, "bl"):
		return append(w, 'e') // bl -> ble
	case hasSuffix(w, "iz"):
		return append(w, 'e') // iz -> ize
	case endsDoubleC(w):
		last := w[len(w)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return w[:len(w)-1]
		}
		return w
	case measure(w, len(w)) == 1 && endsCVC(w, len(w)):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w, len(w)-1) {
		w[len(w)-1] = 'i'
	}
	return w
}

// suffixRule is one (suffix -> replacement) rule applied when the stem's
// measure passes the step's threshold.
type suffixRule struct{ from, to string }

// applyRules applies the first matching rule whose root measure exceeds
// minM; ok reports whether any rule matched (regardless of the measure).
func applyRules(w []byte, rules []suffixRule, minM int) []byte {
	for _, r := range rules {
		if hasSuffix(w, r.from) {
			if measure(w, stemRoot(w, r.from)) > minM {
				return replaceSuffix(w, r.from, r.to)
			}
			return w
		}
	}
	return w
}

var step2Rules = []suffixRule{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte { return applyRules(w, step2Rules, 0) }

var step3Rules = []suffixRule{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte { return applyRules(w, step3Rules, 0) }

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		root := stemRoot(w, s)
		if measure(w, root) <= 1 {
			return w
		}
		if s == "ion" {
			// Only strip -ion after s or t.
			if root == 0 || (w[root-1] != 's' && w[root-1] != 't') {
				return w
			}
		}
		return w[:root]
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	root := len(w) - 1
	m := measure(w, root)
	if m > 1 || (m == 1 && !endsCVC(w, root)) {
		return w[:root]
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w, len(w)) > 1 && endsDoubleC(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
