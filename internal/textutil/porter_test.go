package textutil

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestStemCanonicalPairs checks the examples from Porter's 1980 paper.
func TestStemCanonicalPairs(t *testing.T) {
	pairs := map[string]string{
		// Step 1a.
		"caresses": "caress", "ponies": "poni", "ties": "ti",
		"caress": "caress", "cats": "cat",
		// Step 1b.
		"feed": "feed", "agreed": "agre", "plastered": "plaster",
		"bled": "bled", "motoring": "motor", "sing": "sing",
		"conflated": "conflat", "troubled": "troubl", "sized": "size",
		"hopping": "hop", "tanned": "tan", "falling": "fall",
		"hissing": "hiss", "fizzed": "fizz", "failing": "fail",
		"filing": "file",
		// Step 1c.
		"happy": "happi", "sky": "sky",
		// Step 2.
		"relational": "relat", "conditional": "condit",
		"valenci": "valenc", "hesitanci": "hesit",
		"digitizer": "digit", "radicalli": "radic",
		"differentli": "differ", "vileli": "vile",
		"analogousli": "analog", "vietnamization": "vietnam",
		"predication": "predic", "operator": "oper",
		"feudalism": "feudal", "decisiveness": "decis",
		"hopefulness": "hope", "callousness": "callous",
		"formaliti": "formal", "sensitiviti": "sensit",
		"sensibiliti": "sensibl",
		// Step 3.
		"triplicate": "triplic", "formative": "form", "formalize": "formal",
		"electriciti": "electr", "electrical": "electr",
		"hopeful": "hope", "goodness": "good",
		// Step 4.
		"revival": "reviv", "allowance": "allow", "inference": "infer",
		"airliner": "airlin", "gyroscopic": "gyroscop",
		"adjustable": "adjust", "defensible": "defens",
		"irritant": "irrit", "replacement": "replac",
		"adjustment": "adjust", "dependent": "depend",
		"adoption": "adopt", "communism": "commun",
		"activate": "activ", "angulariti": "angular",
		"effective": "effect", "bowdlerize": "bowdler",
		// Step 5.
		"probate": "probat", "rate": "rate", "cease": "ceas",
		"controll": "control", "roll": "roll",
		// Short words unchanged.
		"a": "a", "be": "be", "ox": "ox",
	}
	for in, want := range pairs {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestStemConflatesInflections is the property the feature exists for.
func TestStemConflatesInflections(t *testing.T) {
	groups := [][]string{
		{"fish", "fishing", "fished"},
		{"connect", "connected", "connecting", "connection", "connections"},
		{"swim", "swims"},
		{"run", "running", "runs"},
	}
	for _, g := range groups {
		base := Stem(g[0])
		for _, w := range g[1:] {
			if Stem(w) != base {
				t.Errorf("Stem(%q) = %q, want %q (conflation with %q)", w, Stem(w), base, g[0])
			}
		}
	}
}

func TestStemIdempotentOnItsOutputForCommonWords(t *testing.T) {
	// Porter is not idempotent in general, but for a large natural set the
	// second application must never lengthen the word or panic.
	words := strings.Fields(`the quick brown foxes jumped over lazily sleeping
		dogs while photographers documented everything happening repeatedly
		organizations internationalization conditionally`)
	for _, w := range words {
		s1 := Stem(w)
		s2 := Stem(s1)
		if len(s2) > len(s1) {
			t.Errorf("Stem(Stem(%q)) = %q longer than %q", w, s2, s1)
		}
	}
}

func TestQuickStemNeverPanicsOrGrows(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if len(Stem(tok)) > len(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMeasure(t *testing.T) {
	tests := []struct {
		w string
		m int
	}{
		{"tr", 0}, {"ee", 0}, {"tree", 0}, {"y", 0}, {"by", 0},
		{"trouble", 1}, {"oats", 1}, {"trees", 1}, {"ivy", 1},
		{"troubles", 2}, {"private", 2}, {"oaten", 2}, {"orrery", 2},
	}
	for _, tt := range tests {
		if got := measure([]byte(tt.w), len(tt.w)); got != tt.m {
			t.Errorf("measure(%q) = %d, want %d", tt.w, got, tt.m)
		}
	}
}

func TestAnalyzerPipeline(t *testing.T) {
	plain := &Analyzer{}
	if got := plain.Tokens("The Fishing Boats"); strings.Join(got, " ") != "the fishing boats" {
		t.Errorf("plain tokens = %v", got)
	}

	stop := &Analyzer{Stopwords: DefaultStopwords()}
	if got := stop.Tokens("the fishing boats"); strings.Join(got, " ") != "fishing boats" {
		t.Errorf("stopword tokens = %v", got)
	}

	full := &Analyzer{Stopwords: DefaultStopwords(), Stemming: true}
	if got := full.Tokens("the fishing boats are running"); strings.Join(got, " ") != "fish boat run" {
		t.Errorf("full pipeline = %v", got)
	}

	// Unique preserves first occurrence under the pipeline.
	if got := full.Unique("fishing fished fisher boats"); strings.Join(got, " ") != "fish boat" {
		// "fisher" stems to "fisher" per Porter (m=1, er needs m>1).
		if strings.Join(got, " ") != "fish fisher boat" {
			t.Errorf("Unique = %v", got)
		}
	}

	// Keyword normalization matches document processing.
	if full.Keyword("Fishing") != "fish" {
		t.Errorf("Keyword = %q", full.Keyword("Fishing"))
	}
	if full.Keyword("the") != "" {
		t.Error("stopword keyword should dissolve")
	}
	if got := full.Keywords([]string{"Fishing", "FISHED", "the", "boats"}); strings.Join(got, " ") != "fish boat" {
		t.Errorf("Keywords = %v", got)
	}

	// ContainsAll under stemming: inflection-insensitive.
	if !full.ContainsAll("boats fishing daily", []string{"boat", "fish"}) {
		t.Error("stemmed containment failed")
	}
	if full.ContainsAll("boats fishing daily", []string{"submarine"}) {
		t.Error("false containment")
	}
	// Plain analyzer: no conflation.
	if plain.ContainsAll("boats fishing daily", []string{"boat"}) {
		t.Error("plain analyzer conflated inflections")
	}
}

func TestNilAnalyzerBehavesPlain(t *testing.T) {
	var a *Analyzer
	if got := a.Tokens("Hello World"); strings.Join(got, " ") != "hello world" {
		t.Errorf("nil analyzer tokens = %v", got)
	}
	if !a.ContainsAll("hello world", []string{"hello"}) {
		t.Error("nil analyzer containment")
	}
	if got := a.TermFreqs("x x y"); got["x"] != 2 || got["y"] != 1 {
		t.Errorf("nil analyzer tf = %v", got)
	}
}
