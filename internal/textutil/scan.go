package textutil

import (
	"unicode"
	"unicode/utf8"
)

// This file holds the allocation-free scanning kernels of the read hot
// path: counting and membership-testing already-normalized query terms
// against a document without materializing its tokens. Tokenize builds a
// string per token — fine for indexing, but a top-k query's false-positive
// filter and tf counting run per loaded candidate, where per-token
// allocation dominates the profile.

// tokenFoldEq reports whether the raw token equals the (already lower-case)
// term after per-rune lower-casing — the same normalization Tokenize
// applies, without building the lowered string.
func tokenFoldEq(tok, term string) bool {
	ti := 0
	for _, r := range tok {
		if ti >= len(term) {
			return false
		}
		tr, sz := utf8.DecodeRuneInString(term[ti:])
		if unicode.ToLower(r) != tr {
			return false
		}
		ti += sz
	}
	return ti == len(term)
}

// countTok bumps the count of every term the token matches.
func countTok(counts []int, tok string, terms []string) {
	for i, term := range terms {
		if tokenFoldEq(tok, term) {
			counts[i]++
		}
	}
}

// CountTermsInto sets counts[i] to the number of occurrences of terms[i] in
// text under plain tokenization, without allocating. Terms must already be
// normalized (lower-case single tokens); counts must have at least
// len(terms) elements.
func CountTermsInto(counts []int, text string, terms []string) {
	for i := range terms {
		counts[i] = 0
	}
	start := -1
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			countTok(counts, text[start:i], terms)
			start = -1
		}
	}
	if start >= 0 {
		countTok(counts, text[start:], terms)
	}
}

// containsTermsScan reports whether every term occurs in text under plain
// tokenization, scanning the document once without allocating. Requires
// 0 < len(terms) < 64 (the found-set is a bitmask).
func containsTermsScan(text string, terms []string) bool {
	all := uint64(1)<<len(terms) - 1
	var found uint64
	match := func(tok string) bool {
		for i, term := range terms {
			if found&(1<<i) == 0 && tokenFoldEq(tok, term) {
				found |= 1 << i
			}
		}
		return found == all
	}
	start := -1
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			if match(text[start:i]) {
				return true
			}
			start = -1
		}
	}
	if start >= 0 {
		return match(text[start:])
	}
	return found == all
}
