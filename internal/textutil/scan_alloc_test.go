//go:build !race

package textutil

import "testing"

//go:noinline
func sinkBool(b bool) {}

// TestContainsTermsAllocFree gates the plain-pipeline membership scan: the
// per-candidate false-positive filter of every top-k query must not
// allocate. Skipped under -race (the detector breaks AllocsPerRun).
func TestContainsTermsAllocFree(t *testing.T) {
	var a *Analyzer
	doc := "wireless Internet, pool; ocean view suite"
	terms := []string{"internet", "pool"}
	allocs := testing.AllocsPerRun(100, func() {
		sinkBool(a.ContainsTerms(doc, terms))
	})
	if allocs != 0 {
		t.Errorf("plain ContainsTerms allocates %.1f objects/op, want 0", allocs)
	}
	counts := make([]int, len(terms))
	allocs = testing.AllocsPerRun(100, func() {
		a.TermFreqsInto(counts, doc, terms)
	})
	if allocs != 0 {
		t.Errorf("plain TermFreqsInto allocates %.1f objects/op, want 0", allocs)
	}
}
