package textutil

import (
	"math/rand"
	"strings"
	"testing"
)

// scanDocs exercise case folding, punctuation boundaries, repeated terms,
// unicode, and degenerate inputs.
var scanDocs = []string{
	"",
	"   ...   ",
	"pizza",
	"Pizza PIZZA pizza!",
	"wireless Internet, pool; Internet",
	"café CAFÉ cafe",
	"a1 b2 a1a1 a1",
	strings.Repeat("word ", 50) + "tail",
}

func TestCountTermsIntoMatchesTermFreqs(t *testing.T) {
	terms := []string{"pizza", "internet", "café", "a1", "word", "missing"}
	counts := make([]int, len(terms))
	for _, doc := range scanDocs {
		CountTermsInto(counts, doc, terms)
		tf := TermFreqs(doc)
		for i, term := range terms {
			if counts[i] != tf[term] {
				t.Errorf("doc %q term %q: CountTermsInto %d, TermFreqs %d", doc, term, counts[i], tf[term])
			}
		}
	}
}

func TestContainsTermsScanMatchesMapPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vocab := []string{"pizza", "cafe", "bar", "sushi", "deli", "pool", "internet"}
	for trial := 0; trial < 200; trial++ {
		var b strings.Builder
		for w := rng.Intn(8); w > 0; w-- {
			if rng.Intn(3) == 0 {
				b.WriteString(strings.ToUpper(vocab[rng.Intn(len(vocab))]))
			} else {
				b.WriteString(vocab[rng.Intn(len(vocab))])
			}
			b.WriteString([]string{" ", ", ", "; ", "-"}[rng.Intn(4)])
		}
		doc := b.String()
		terms := make([]string, 1+rng.Intn(3))
		for i := range terms {
			terms[i] = vocab[rng.Intn(len(vocab))]
		}
		got := containsTermsScan(doc, terms)
		// Oracle: the original map-based membership test.
		set := TokenSet(doc)
		want := true
		for _, term := range terms {
			if _, ok := set[term]; !ok {
				want = false
			}
		}
		if got != want {
			t.Fatalf("doc %q terms %v: scan %v, map %v", doc, terms, got, want)
		}
	}
}

func TestTokenFoldEq(t *testing.T) {
	cases := []struct {
		tok, term string
		want      bool
	}{
		{"Pizza", "pizza", true},
		{"PIZZA", "pizza", true},
		{"pizza", "pizzas", false},
		{"pizzas", "pizza", false},
		{"CAFÉ", "café", true},
		{"", "", true},
		{"a", "", false},
		{"", "a", false},
	}
	for _, c := range cases {
		if got := tokenFoldEq(c.tok, c.term); got != c.want {
			t.Errorf("tokenFoldEq(%q, %q) = %v, want %v", c.tok, c.term, got, c.want)
		}
	}
}
