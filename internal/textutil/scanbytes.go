package textutil

import (
	"unicode"
	"unicode/utf8"
)

// Byte-slice twins of the scan kernels in scan.go. The candidate filter of
// the read hot path runs over rows still sitting in I/O scratch buffers;
// converting each to a string before scanning would reintroduce exactly the
// per-candidate allocation the kernels exist to remove. Equivalence with
// the string kernels is pinned by tests.

// tokenFoldEqBytes is tokenFoldEq for a raw byte token.
//
//skvet:hotpath
func tokenFoldEqBytes(tok []byte, term string) bool {
	ti := 0
	for i := 0; i < len(tok); {
		r, sz := utf8.DecodeRune(tok[i:])
		i += sz
		if ti >= len(term) {
			return false
		}
		tr, tsz := utf8.DecodeRuneInString(term[ti:])
		if unicode.ToLower(r) != tr {
			return false
		}
		ti += tsz
	}
	return ti == len(term)
}

// countTokBytes bumps the count of every term the token matches.
//
//skvet:hotpath
func countTokBytes(counts []int, tok []byte, terms []string) {
	for i, term := range terms {
		if tokenFoldEqBytes(tok, term) {
			counts[i]++
		}
	}
}

// CountTermsBytesInto is CountTermsInto for a document in a byte buffer.
//
//skvet:hotpath
func CountTermsBytesInto(counts []int, text []byte, terms []string) {
	for i := range terms {
		counts[i] = 0
	}
	start := -1
	for i := 0; i < len(text); {
		r, sz := utf8.DecodeRune(text[i:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			countTokBytes(counts, text[start:i], terms)
			start = -1
		}
		i += sz
	}
	if start >= 0 {
		countTokBytes(counts, text[start:], terms)
	}
}

// containsTermsScanBytes is containsTermsScan for a document in a byte
// buffer. Requires 0 < len(terms) < 64.
//
//skvet:hotpath
func containsTermsScanBytes(text []byte, terms []string) bool {
	all := uint64(1)<<len(terms) - 1
	var found uint64
	match := func(tok []byte) bool {
		for i, term := range terms {
			if found&(1<<i) == 0 && tokenFoldEqBytes(tok, term) {
				found |= 1 << i
			}
		}
		return found == all
	}
	start := -1
	for i := 0; i < len(text); {
		r, sz := utf8.DecodeRune(text[i:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			if match(text[start:i]) {
				return true
			}
			start = -1
		}
		i += sz
	}
	if start >= 0 {
		return match(text[start:])
	}
	return found == all
}

// ContainsTermsBytes is ContainsTerms for a document still in an I/O
// scratch buffer; text must not be retained. Allocation-free on the plain
// pipeline; other pipelines fall back to a string conversion.
//
//skvet:hotpath
func (a *Analyzer) ContainsTermsBytes(text []byte, terms []string) bool {
	if len(terms) == 0 {
		return true
	}
	if a.plain() && len(terms) < 64 {
		return containsTermsScanBytes(text, terms)
	}
	return a.ContainsTerms(string(text), terms)
}

// TermFreqsBytesInto is TermFreqsInto for a document still in an I/O
// scratch buffer; text must not be retained. Allocation-free on the plain
// pipeline; other pipelines fall back to a string conversion.
func (a *Analyzer) TermFreqsBytesInto(counts []int, text []byte, terms []string) {
	if a.plain() {
		CountTermsBytesInto(counts, text, terms)
		return
	}
	a.TermFreqsInto(counts, string(text), terms)
}
