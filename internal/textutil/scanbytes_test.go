package textutil

import (
	"math/rand"
	"strings"
	"testing"
)

// TestByteKernelsMatchStringKernels pins the byte-slice twins to the string
// kernels over the shared scan corpus.
func TestByteKernelsMatchStringKernels(t *testing.T) {
	terms := []string{"pizza", "internet", "café", "a1", "word", "missing"}
	sCounts := make([]int, len(terms))
	bCounts := make([]int, len(terms))
	for _, doc := range scanDocs {
		CountTermsInto(sCounts, doc, terms)
		CountTermsBytesInto(bCounts, []byte(doc), terms)
		for i := range terms {
			if sCounts[i] != bCounts[i] {
				t.Errorf("doc %q term %q: string %d, bytes %d", doc, terms[i], sCounts[i], bCounts[i])
			}
		}
		for n := 1; n <= len(terms); n++ {
			s := containsTermsScan(doc, terms[:n])
			b := containsTermsScanBytes([]byte(doc), terms[:n])
			if s != b {
				t.Errorf("doc %q terms %v: string %v, bytes %v", doc, terms[:n], s, b)
			}
		}
	}
}

// TestByteKernelsRandomized cross-checks random documents, including ones
// with multi-byte runes and truncated UTF-8.
func TestByteKernelsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vocab := []string{"pizza", "café", "bar", "sushi", "a1"}
	pieces := []string{" ", ", ", "-", "\xff", "é", "PIZZA", "Café", "bar", "a1", "sushi!"}
	for trial := 0; trial < 300; trial++ {
		var b strings.Builder
		for n := rng.Intn(12); n > 0; n-- {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		doc := b.String()
		terms := make([]string, 1+rng.Intn(3))
		for i := range terms {
			terms[i] = vocab[rng.Intn(len(vocab))]
		}
		counts := make([]int, len(terms))
		bcounts := make([]int, len(terms))
		CountTermsInto(counts, doc, terms)
		CountTermsBytesInto(bcounts, []byte(doc), terms)
		for i := range terms {
			if counts[i] != bcounts[i] {
				t.Fatalf("doc %q term %q: string %d, bytes %d", doc, terms[i], counts[i], bcounts[i])
			}
		}
		if s, by := containsTermsScan(doc, terms), containsTermsScanBytes([]byte(doc), terms); s != by {
			t.Fatalf("doc %q terms %v: string %v, bytes %v", doc, terms, s, by)
		}
	}
}

// TestAnalyzerBytesFallbacks checks the non-plain pipeline falls back to the
// string path with identical results.
func TestAnalyzerBytesFallbacks(t *testing.T) {
	a := &Analyzer{Stopwords: DefaultStopwords(), Stemming: true}
	doc := "the agreements were pooled by the hotels"
	terms := a.Keywords([]string{"agreement", "pool"})
	sCounts := make([]int, len(terms))
	bCounts := make([]int, len(terms))
	a.TermFreqsInto(sCounts, doc, terms)
	a.TermFreqsBytesInto(bCounts, []byte(doc), terms)
	for i := range terms {
		if sCounts[i] != bCounts[i] {
			t.Errorf("term %q: string %d, bytes %d", terms[i], sCounts[i], bCounts[i])
		}
	}
	if s, b := a.ContainsTerms(doc, terms), a.ContainsTermsBytes([]byte(doc), terms); s != b {
		t.Errorf("ContainsTerms %v, ContainsTermsBytes %v", s, b)
	}
	var plain *Analyzer
	if !plain.ContainsTermsBytes([]byte("anything"), nil) {
		t.Error("empty term set must be vacuously contained")
	}
}
