// Package textutil provides the text processing used by the keyword side of
// the library: tokenization of object descriptions, vocabulary construction,
// and per-document term statistics.
//
// The paper treats an object's text T.t as "the concatenation of the name
// and amenities attributes" and matches keywords case-insensitively (its
// running example matches "internet" against "Internet" and
// "wireless Internet"). Tokenize therefore lower-cases input and splits on
// any non-alphanumeric rune.
package textutil

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits a document into lower-case word tokens. Runs of letters
// and digits form tokens; every other rune is a separator. The result
// preserves document order and may contain duplicates (term frequency
// information); use UniqueTokens for the distinct-word set.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// UniqueTokens returns the distinct words of a document in first-occurrence
// order. This is the word set that is hashed into an object's signature and
// posted into the inverted index.
func UniqueTokens(text string) []string {
	tokens := Tokenize(text)
	seen := make(map[string]struct{}, len(tokens))
	uniq := tokens[:0]
	for _, tok := range tokens {
		if _, ok := seen[tok]; ok {
			continue
		}
		seen[tok] = struct{}{}
		uniq = append(uniq, tok)
	}
	return uniq
}

// ContainsAll reports whether the document contains every query keyword.
// This is the conjunctive ("Boolean keyword query") check of the paper's
// distance-first queries, and the false-positive filter of IR2TopK line 21.
// Keywords are normalized with the same rules as Tokenize.
func ContainsAll(text string, keywords []string) bool {
	if len(keywords) == 0 {
		return true
	}
	set := TokenSet(text)
	for _, w := range keywords {
		if _, ok := set[Normalize(w)]; !ok {
			return false
		}
	}
	return true
}

// ContainsAny reports whether the document contains at least one query
// keyword (the disjunctive semantics of general top-k queries, where "an
// object containing only some of the query keywords may be in the result").
func ContainsAny(text string, keywords []string) bool {
	set := TokenSet(text)
	for _, w := range keywords {
		if _, ok := set[Normalize(w)]; ok {
			return true
		}
	}
	return false
}

// TokenSet returns the distinct-word set of a document.
func TokenSet(text string) map[string]struct{} {
	tokens := Tokenize(text)
	set := make(map[string]struct{}, len(tokens))
	for _, tok := range tokens {
		set[tok] = struct{}{}
	}
	return set
}

// TermFreqs returns the term-frequency map of a document: distinct word ->
// number of occurrences. Used by the tf-idf IR score of the general
// algorithm.
func TermFreqs(text string) map[string]int {
	tokens := Tokenize(text)
	tf := make(map[string]int, len(tokens))
	for _, tok := range tokens {
		tf[tok]++
	}
	return tf
}

// Normalize applies the token normalization rules to a single keyword,
// returning the first token of the keyword text ("" if the keyword contains
// no alphanumeric runes). Query keywords are single words in the paper's
// model.
func Normalize(keyword string) string {
	toks := Tokenize(keyword)
	if len(toks) == 0 {
		return ""
	}
	return toks[0]
}

// NormalizeAll normalizes a keyword list, dropping empties and duplicates
// while preserving order.
func NormalizeAll(keywords []string) []string {
	out := make([]string, 0, len(keywords))
	seen := make(map[string]struct{}, len(keywords))
	for _, w := range keywords {
		n := Normalize(w)
		if n == "" {
			continue
		}
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

// Vocabulary accumulates corpus-level term statistics: the set of distinct
// words, their document frequencies, and per-document unique word counts.
// It backs Table 1's "average # unique words per object" and "total # unique
// words" columns, the idf component of the IR score, and the optimal
// signature length computation (which needs the expected number of distinct
// words per document).
type Vocabulary struct {
	docFreq   map[string]int
	numDocs   int
	uniqueSum int64
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{docFreq: make(map[string]int)}
}

// AddDoc folds one document into the statistics using plain tokenization.
func (v *Vocabulary) AddDoc(text string) {
	v.AddDocWith(nil, text)
}

// AddDocWith folds one document in through the given analyzer pipeline
// (nil behaves like AddDoc). Every document of a corpus must go through
// the same pipeline.
func (v *Vocabulary) AddDocWith(a *Analyzer, text string) {
	uniq := a.Unique(text)
	for _, w := range uniq {
		v.docFreq[w]++
	}
	v.numDocs++
	v.uniqueSum += int64(len(uniq))
}

// NumDocs returns the number of documents added.
func (v *Vocabulary) NumDocs() int { return v.numDocs }

// NumWords returns the number of distinct words across the corpus.
func (v *Vocabulary) NumWords() int { return len(v.docFreq) }

// DocFreq returns the number of documents containing word (normalized).
func (v *Vocabulary) DocFreq(word string) int {
	return v.docFreq[Normalize(word)]
}

// AvgUniqueWordsPerDoc returns the mean number of distinct words per
// document (Table 1's "average # unique words per object").
func (v *Vocabulary) AvgUniqueWordsPerDoc() float64 {
	if v.numDocs == 0 {
		return 0
	}
	return float64(v.uniqueSum) / float64(v.numDocs)
}

// WordsByFreq returns all distinct words ordered by descending document
// frequency (ties broken lexicographically). Experiment workloads draw
// query keywords from this ranking.
func (v *Vocabulary) WordsByFreq() []string {
	words := make([]string, 0, len(v.docFreq))
	for w := range v.docFreq {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		fi, fj := v.docFreq[words[i]], v.docFreq[words[j]]
		if fi != fj {
			return fi > fj
		}
		return words[i] < words[j]
	})
	return words
}
