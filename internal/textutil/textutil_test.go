package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"simple", "tennis court", []string{"tennis", "court"}},
		{"case folding", "wireless Internet, pool", []string{"wireless", "internet", "pool"}},
		{"punctuation", "wake-up service; no pets!", []string{"wake", "up", "service", "no", "pets"}},
		{"digits kept", "open 24 hours", []string{"open", "24", "hours"}},
		{"empty", "", nil},
		{"only separators", " ,;-- ", nil},
		{"duplicates preserved", "pool spa pool", []string{"pool", "spa", "pool"}},
		{"unicode letters", "café Münchén", []string{"café", "münchén"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Tokenize(tt.in); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestUniqueTokens(t *testing.T) {
	got := UniqueTokens("pool spa Pool internet spa")
	want := []string{"pool", "spa", "internet"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UniqueTokens = %v, want %v", got, want)
	}
	if got := UniqueTokens(""); len(got) != 0 {
		t.Errorf("UniqueTokens(empty) = %v", got)
	}
}

func TestContainsAll(t *testing.T) {
	// Hotel G from the paper's Figure 1.
	doc := "Hotel G Internet, airport transportation, pool"
	tests := []struct {
		name     string
		keywords []string
		want     bool
	}{
		{"both present (paper example)", []string{"internet", "pool"}, true},
		{"case-insensitive query", []string{"INTERNET", "Pool"}, true},
		{"one missing", []string{"internet", "spa"}, false},
		{"empty keyword list", nil, true},
		{"single present", []string{"airport"}, true},
		{"substring is not a word", []string{"port"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ContainsAll(doc, tt.keywords); got != tt.want {
				t.Errorf("ContainsAll(%v) = %v, want %v", tt.keywords, got, tt.want)
			}
		})
	}
}

func TestContainsAny(t *testing.T) {
	doc := "sauna, pool, conference rooms"
	if !ContainsAny(doc, []string{"internet", "pool"}) {
		t.Error("ContainsAny missed 'pool'")
	}
	if ContainsAny(doc, []string{"internet", "spa"}) {
		t.Error("ContainsAny false positive")
	}
	if ContainsAny(doc, nil) {
		t.Error("ContainsAny with no keywords should be false")
	}
}

func TestTermFreqs(t *testing.T) {
	tf := TermFreqs("pool spa pool POOL")
	if tf["pool"] != 3 || tf["spa"] != 1 {
		t.Errorf("TermFreqs = %v", tf)
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Internet", "internet"},
		{"  POOL  ", "pool"},
		{"wake-up", "wake"},
		{"", ""},
		{"!!!", ""},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeAll(t *testing.T) {
	got := NormalizeAll([]string{"Internet", "pool", "", "INTERNET", "!!", "spa"})
	want := []string{"internet", "pool", "spa"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NormalizeAll = %v, want %v", got, want)
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	// Figure 1 amenity lists (abridged).
	docs := []string{
		"tennis court, gift shop, spa, Internet",
		"wireless Internet, pool, golf course",
		"spa, continental suites, pool",
	}
	for _, d := range docs {
		v.AddDoc(d)
	}
	if v.NumDocs() != 3 {
		t.Errorf("NumDocs = %d", v.NumDocs())
	}
	if got := v.DocFreq("internet"); got != 2 {
		t.Errorf("DocFreq(internet) = %d, want 2", got)
	}
	if got := v.DocFreq("POOL"); got != 2 {
		t.Errorf("DocFreq(POOL) = %d, want 2 (normalization)", got)
	}
	if got := v.DocFreq("sauna"); got != 0 {
		t.Errorf("DocFreq(sauna) = %d, want 0", got)
	}
	// Doc unique counts: 6, 5, 4 → avg 5.
	if got, want := v.AvgUniqueWordsPerDoc(), 5.0; got != want {
		t.Errorf("AvgUniqueWordsPerDoc = %g, want %g", got, want)
	}
	words := v.WordsByFreq()
	if len(words) != v.NumWords() {
		t.Fatalf("WordsByFreq length %d != NumWords %d", len(words), v.NumWords())
	}
	for i := 1; i < len(words); i++ {
		if v.DocFreq(words[i-1]) < v.DocFreq(words[i]) {
			t.Fatalf("WordsByFreq not sorted at %d: %s(%d) before %s(%d)",
				i, words[i-1], v.DocFreq(words[i-1]), words[i], v.DocFreq(words[i]))
		}
	}
	// internet/pool/spa (freq 2) must precede freq-1 words.
	if v.DocFreq(words[0]) != 2 {
		t.Errorf("most frequent word has freq %d", v.DocFreq(words[0]))
	}
}

func TestEmptyVocabulary(t *testing.T) {
	v := NewVocabulary()
	if v.AvgUniqueWordsPerDoc() != 0 {
		t.Error("empty vocabulary average should be 0")
	}
	if v.NumWords() != 0 || v.NumDocs() != 0 {
		t.Error("empty vocabulary counts should be 0")
	}
}

func TestQuickTokenizeAlwaysLowercaseAndNonEmpty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickContainsAllOfOwnTokens(t *testing.T) {
	// Every document contains all of its own unique tokens.
	f := func(s string) bool {
		return ContainsAll(s, UniqueTokens(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUniqueTokensAreUnique(t *testing.T) {
	f := func(s string) bool {
		uniq := UniqueTokens(s)
		seen := make(map[string]struct{}, len(uniq))
		for _, w := range uniq {
			if _, dup := seen[w]; dup {
				return false
			}
			seen[w] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
