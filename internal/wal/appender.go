package wal

import (
	"sync"
	"time"
)

// Appender is the concurrent front end of a Log: it assigns sequence
// numbers, batches concurrent appends into one device write + one sync
// (group commit), and acknowledges each waiter only after its record is on
// stable storage.
//
// The commit protocol is leader/follower. The first appender to find no
// flush in progress becomes the leader: it (optionally) sleeps the group
// window to let more records stage, collects everything staged, and —
// with the mutex released — writes and syncs the batch. Followers wait on
// the condition variable until the durable watermark passes their record.
// No device I/O ever happens while the mutex is held.
//
// Errors are sticky: once a write or sync fails, the log's durable prefix
// is unknown territory and every subsequent append fails with the same
// error. The engine reopens (replaying the durable prefix) to recover.
type Appender struct {
	log    *Log
	window time.Duration
	sleep  func(time.Duration) // injectable for tests

	mu         sync.Mutex
	cond       *sync.Cond
	staged     []byte // encoded frames not yet handed to the log
	nextSeq    uint64
	durableSeq uint64
	flushing   bool
	err        error

	appends uint64
	fsyncs  uint64
	onFsync func(time.Duration) // metrics hook; set before first use
}

// NewAppender wraps l. window is how long a group-commit leader waits for
// more records before syncing; zero syncs immediately (every durable
// append pays its own fsync unless writers genuinely race).
func NewAppender(l *Log, window time.Duration) *Appender {
	a := &Appender{
		log:        l,
		window:     window,
		sleep:      time.Sleep,
		nextSeq:    l.LastSeq() + 1,
		durableSeq: l.LastSeq(),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// SetFsyncObserver installs a hook called with the duration of every group
// commit's sync. Install before the first append; the hook runs outside
// the appender's mutex.
func (a *Appender) SetFsyncObserver(fn func(time.Duration)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onFsync = fn
}

// Append stages the record and blocks until it is durable (or the log
// breaks). It returns the record's assigned sequence number.
func (a *Appender) Append(rec Record) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return 0, a.err
	}
	seq := a.stageLocked(rec)
	for a.durableSeq < seq && a.err == nil {
		if a.flushing {
			a.cond.Wait()
			continue
		}
		a.flushLocked(true)
	}
	if a.durableSeq >= seq {
		return seq, nil
	}
	return seq, a.err
}

// AppendAsync stages the record without waiting for durability; a later
// Sync (or a concurrent group commit) makes it durable. Bulk ingest uses
// it to choose its own batch boundaries.
func (a *Appender) AppendAsync(rec Record) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return 0, a.err
	}
	return a.stageLocked(rec), nil
}

// Sync blocks until every staged record is durable.
func (a *Appender) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	target := a.nextSeq - 1
	for a.durableSeq < target && a.err == nil {
		if a.flushing {
			a.cond.Wait()
			continue
		}
		a.flushLocked(false)
	}
	if a.durableSeq >= target {
		return nil
	}
	return a.err
}

// LastAssignedSeq returns the highest sequence number handed out so far
// (durable or merely staged); 0 before the first append of a fresh log.
func (a *Appender) LastAssignedSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextSeq - 1
}

// Err returns the sticky error, if any.
func (a *Appender) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// stageLocked encodes rec with the next sequence number. Callers hold mu.
func (a *Appender) stageLocked(rec Record) uint64 {
	seq := a.nextSeq
	a.nextSeq++
	rec.Seq = seq
	a.staged = AppendRecord(a.staged, rec)
	a.appends++
	return seq
}

// flushLocked runs one group commit as leader. Called with mu held and
// a.flushing false; returns with mu held. The device write and sync happen
// with the mutex released.
func (a *Appender) flushLocked(withWindow bool) {
	a.flushing = true
	if withWindow && a.window > 0 {
		a.mu.Unlock()
		a.sleep(a.window)
		a.mu.Lock()
	}
	batch := a.staged
	a.staged = nil
	hi := a.nextSeq - 1
	observe := a.onFsync
	a.mu.Unlock()

	var err error
	if len(batch) > 0 {
		err = a.log.Append(batch)
	}
	if err == nil {
		start := time.Now()
		err = a.log.Sync()
		if err == nil && observe != nil {
			observe(time.Since(start))
		}
	}

	a.mu.Lock()
	if err != nil {
		a.err = err
	} else {
		a.durableSeq = hi
		a.log.noteAppended(hi)
		a.fsyncs++
	}
	a.flushing = false
	a.cond.Broadcast()
}

// Stats is a snapshot of the appender's counters.
type Stats struct {
	// Appends is the number of records staged (durable or not).
	Appends uint64
	// Fsyncs is the number of group commits completed.
	Fsyncs uint64
	// DurableSeq is the highest acknowledged sequence number.
	DurableSeq uint64
}

// Stats returns the appender's counters.
func (a *Appender) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{Appends: a.appends, Fsyncs: a.fsyncs, DurableSeq: a.durableSeq}
}
