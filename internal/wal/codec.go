package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// MaxRecordSize bounds one record's payload. A length field above it is
// treated as corruption, so a few flipped bits in a length prefix cannot
// make recovery chase gigabytes of garbage.
const MaxRecordSize = 1 << 20

// frameHeaderSize is the per-record framing overhead: 4-byte payload
// length plus 4-byte CRC32-C of the payload.
const frameHeaderSize = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends r, framed, to dst and returns the extended slice.
func AppendRecord(dst []byte, r Record) []byte {
	payload := encodePayload(r)
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodePayload serializes a record body:
//
//	[8B seq][1B op][8B id][8B tag] then, for OpAdd,
//	[2B dim][dim × 8B float64 bits][4B text length][text]
func encodePayload(r Record) []byte {
	n := 8 + 1 + 8 + 8
	if r.Op == OpAdd {
		n += 2 + 8*len(r.Point) + 4 + len(r.Text)
	}
	buf := make([]byte, 0, n)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], r.Seq)
	buf = append(buf, tmp[:]...)
	buf = append(buf, byte(r.Op))
	binary.LittleEndian.PutUint64(tmp[:], r.ID)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], r.Tag)
	buf = append(buf, tmp[:]...)
	if r.Op == OpAdd {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(r.Point)))
		buf = append(buf, tmp[:2]...)
		for _, c := range r.Point {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(c))
			buf = append(buf, tmp[:]...)
		}
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Text)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, r.Text...)
	}
	return buf
}

// decodePayload parses one record body. It rejects unknown opcodes, short
// or over-long payloads, and trailing bytes — recovery treats any decode
// failure as a torn tail.
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 25 {
		return r, fmt.Errorf("payload too short (%d bytes)", len(p))
	}
	r.Seq = binary.LittleEndian.Uint64(p[0:8])
	r.Op = Op(p[8])
	r.ID = binary.LittleEndian.Uint64(p[9:17])
	r.Tag = binary.LittleEndian.Uint64(p[17:25])
	rest := p[25:]
	switch r.Op {
	case OpDelete:
		if len(rest) != 0 {
			return r, fmt.Errorf("delete record has %d trailing bytes", len(rest))
		}
	case OpAdd:
		if len(rest) < 2 {
			return r, fmt.Errorf("add record truncated before dimension")
		}
		dim := int(binary.LittleEndian.Uint16(rest[0:2]))
		rest = rest[2:]
		if len(rest) < 8*dim+4 {
			return r, fmt.Errorf("add record truncated inside %d-d point", dim)
		}
		if dim > 0 {
			r.Point = make([]float64, dim)
			for i := 0; i < dim; i++ {
				r.Point[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i : 8*i+8]))
			}
		}
		rest = rest[8*dim:]
		textLen := int(binary.LittleEndian.Uint32(rest[0:4]))
		rest = rest[4:]
		if len(rest) != textLen {
			return r, fmt.Errorf("add record text length %d, have %d bytes", textLen, len(rest))
		}
		r.Text = string(rest)
	default:
		return r, fmt.Errorf("unknown opcode %d", uint8(r.Op))
	}
	return r, nil
}

// ErrPartialFrame is returned by DecodeFrame when the buffer ends before
// the frame does. Stream consumers treat it as "wait for more bytes"; it
// is never a corruption verdict.
var ErrPartialFrame = errors.New("wal: partial frame")

// ErrBadFrame is wrapped by DecodeFrame for frames that can never become
// valid with more bytes: implausible length, CRC mismatch, undecodable
// payload. Stream consumers treat it as corruption on the wire and
// re-request the region from a trusted position.
var ErrBadFrame = errors.New("wal: bad frame")

// DecodeFrame decodes the single framed record at the start of data and
// returns it with the number of bytes consumed. Unlike recovery's stream
// scan it carries no sequence expectations, so it can parse a batch of
// frames shipped from the middle of a log — the replication wire format.
// A zero length field decodes as a clean end: (zero Record, 0, nil).
func DecodeFrame(data []byte) (Record, int, error) {
	var r Record
	if len(data) < 4 {
		if len(data) == 0 {
			return r, 0, nil
		}
		return r, 0, ErrPartialFrame
	}
	length := int64(binary.LittleEndian.Uint32(data[0:4]))
	if length == 0 {
		return r, 0, nil
	}
	if length > MaxRecordSize {
		return r, 0, fmt.Errorf("%w: implausible length %d", ErrBadFrame, length)
	}
	if int64(len(data)) < frameHeaderSize+length {
		return r, 0, ErrPartialFrame
	}
	wantCRC := binary.LittleEndian.Uint32(data[4:8])
	payload := data[frameHeaderSize : frameHeaderSize+length]
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return r, 0, fmt.Errorf("%w: crc mismatch", ErrBadFrame)
	}
	r, err := decodePayload(payload)
	if err != nil {
		return r, 0, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return r, int(frameHeaderSize + length), nil
}

// parseStream scans a recovered byte region for framed records. It returns
// the intact records, the logical end offset (the byte after the last good
// frame), and a non-nil torn-tail descriptor if the scan stopped at a
// corrupt or partial frame rather than a clean terminator.
func parseStream(data []byte) (recs []Record, end int64, torn *TornTailError) {
	var off int64
	var prevSeq uint64
	tornAt := func(reason string) *TornTailError {
		dropped := int64(0)
		for i := len(data) - 1; i >= int(off); i-- {
			if data[i] != 0 {
				dropped = int64(i+1) - off
				break
			}
		}
		return &TornTailError{Offset: off, DroppedBytes: dropped, Reason: reason}
	}
	for {
		if off+4 > int64(len(data)) {
			// Fewer than a length field's worth of bytes left: clean end
			// if they are all zero, torn otherwise.
			for _, b := range data[off:] {
				if b != 0 {
					return recs, off, tornAt("partial length field")
				}
			}
			return recs, off, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if length == 0 {
			return recs, off, nil
		}
		if length > MaxRecordSize {
			return recs, off, tornAt(fmt.Sprintf("implausible length %d", length))
		}
		if off+frameHeaderSize+length > int64(len(data)) {
			return recs, off, tornAt("partial record")
		}
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameHeaderSize : off+frameHeaderSize+length]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return recs, off, tornAt("crc mismatch")
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off, tornAt(err.Error())
		}
		if rec.Seq != prevSeq+1 {
			return recs, off, tornAt(fmt.Sprintf("sequence %d after %d", rec.Seq, prevSeq))
		}
		prevSeq = rec.Seq
		recs = append(recs, rec)
		off += frameHeaderSize + length
	}
}
