package wal

import (
	"bytes"
	"testing"

	"spatialkeyword/internal/storage"
)

// fuzzStream builds a valid framed stream of n records (the fuzz seeds are
// mutations of it).
func fuzzStream(n int) []byte {
	var buf []byte
	for i := 0; i < n; i++ {
		buf = AppendRecord(buf, Record{
			Seq: uint64(i + 1), Op: OpAdd, ID: uint64(i), Tag: uint64(i * 3),
			Point: []float64{float64(i), 0.5}, Text: "fuzz seed record",
		})
	}
	return buf
}

// FuzzWALReplay feeds arbitrary bytes to the log's recovery path as the
// raw contents of the data region and checks the recovery invariants:
//
//   - recovery never panics and never errors on a healthy device;
//   - a second open of the truncated log is clean (no torn tail) and
//     returns identical records (replay is byte-deterministic);
//   - re-encoding the recovered records reproduces exactly the byte
//     prefix recovery accepted.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzStream(3)
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // torn mid-record
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10 // bit flip in a payload
	f.Add(flipped)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, 200)) // pure garbage
	f.Add(AppendRecord(nil, Record{Seq: 2, Op: OpDelete, ID: 1}))
	f.Fuzz(func(t *testing.T, data []byte) {
		const bs = 64
		dev := storage.NewDisk(bs)
		if _, err := Create(dev); err != nil {
			t.Fatalf("Create: %v", err)
		}
		for off := 0; off < len(data); off += bs {
			hi := off + bs
			if hi > len(data) {
				hi = len(data)
			}
			id := dev.Alloc()
			if err := dev.Write(id, data[off:hi]); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		l1, rec1, err := Open(dev)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		l2, rec2, err := Open(dev)
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if rec2.Torn != nil {
			t.Fatalf("torn tail survived truncation: %v", rec2.Torn)
		}
		if !recordsEqual(rec1.Records, rec2.Records) {
			t.Fatalf("replays differ: %d vs %d records", len(rec1.Records), len(rec2.Records))
		}
		if l1.Size() != l2.Size() {
			t.Fatalf("logical size changed across opens: %d vs %d", l1.Size(), l2.Size())
		}
		var reenc []byte
		for _, r := range rec1.Records {
			reenc = append(reenc, AppendRecord(nil, r)...)
		}
		if int64(len(reenc)) != l1.Size() {
			t.Fatalf("re-encoded %d bytes, log size %d", len(reenc), l1.Size())
		}
		if !bytes.Equal(reenc, data[:len(reenc)]) {
			t.Fatalf("re-encoded prefix differs from accepted bytes")
		}
	})
}
