package wal

import (
	"errors"
	"fmt"

	"spatialkeyword/internal/storage"
)

// logMagic identifies a WAL header block ("SKWL").
const logMagic = 0x4c574b53

// logVersion is the on-device format version.
const logVersion = 1

// ErrNotWAL is returned by Open when the device carries no WAL header.
var ErrNotWAL = errors.New("wal: device has no log header")

// Log is an append-only framed byte log on a block device. The device is
// owned exclusively by the log: data blocks are allocated sequentially
// after the header block, so the whole log region is one contiguous run
// and appends are sequential I/O.
//
// Log performs no locking; it is single-writer. The Appender provides the
// concurrent front end (and is the only writer in the engine).
type Log struct {
	dev     storage.Device
	head    storage.BlockID   // header block
	blocks  []storage.BlockID // data blocks, in logical order
	size    int64             // logical end: bytes of framed records
	tail    []byte            // bytes of the final partial block (len = size % blockSize)
	lastSeq uint64            // sequence number of the last recovered/appended record
}

// Create initializes a new, empty log on dev (which must be fresh: the
// log's header is its first allocation). The header is synced so a crash
// immediately after Create still leaves an openable log.
func Create(dev storage.Device) (*Log, error) {
	head := dev.Alloc()
	if head == storage.NilBlock {
		return nil, fmt.Errorf("wal: create: %w", storage.ErrDeviceFull)
	}
	var hdr [8]byte
	putUint32(hdr[0:4], logMagic)
	putUint32(hdr[4:8], logVersion)
	if err := dev.Write(head, hdr[:]); err != nil {
		return nil, fmt.Errorf("wal: write log header: %w", err)
	}
	l := &Log{dev: dev, head: head}
	if err := l.Sync(); err != nil {
		return nil, fmt.Errorf("wal: sync log header: %w", err)
	}
	return l, nil
}

// Open recovers an existing log from dev: it locates the header, scans the
// record stream, and truncates any torn tail (physically zeroing it, so a
// second Open returns byte-identical records and no torn tail). The intact
// records and the torn-tail report, if any, are returned in the Recovery.
func Open(dev storage.Device) (*Log, *Recovery, error) {
	head, err := findHeader(dev)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dev: dev, head: head}
	// The data region is the contiguous run after the header; a read of
	// the first never-allocated block fails with ErrBadBlock, ending it.
	var data []byte
	for id := head + 1; ; id++ {
		blk, err := dev.Read(id)
		if err != nil {
			if errors.Is(err, storage.ErrBadBlock) {
				break
			}
			return nil, nil, fmt.Errorf("wal: read log block %d: %w", id, err)
		}
		l.blocks = append(l.blocks, id)
		data = append(data, blk...)
	}
	recs, end, torn := parseStream(data)
	l.size = end
	if rem := int(end % int64(dev.BlockSize())); rem > 0 {
		l.tail = append([]byte(nil), data[end-int64(rem):end]...)
	}
	if len(recs) > 0 {
		l.lastSeq = recs[len(recs)-1].Seq
	}
	if dirty := dirtyPast(data, end); dirty > 0 {
		if torn == nil {
			// The stream ended cleanly but non-zero bytes follow the
			// terminator — a partially persisted, never-acknowledged
			// append. Report and drop it like any torn tail.
			torn = &TornTailError{Offset: end, DroppedBytes: dirty, Reason: "garbage past clean end"}
		}
		if err := l.truncateTail(data); err != nil {
			return nil, nil, err
		}
	}
	return l, &Recovery{Records: recs, Torn: torn}, nil
}

// findHeader probes the first possible allocations for the log header: the
// in-memory Disk hands out block 1 first, a FileDisk block 2 (block 1 is
// its own metadata).
func findHeader(dev storage.Device) (storage.BlockID, error) {
	for _, id := range []storage.BlockID{1, 2} {
		blk, err := dev.Read(id)
		if err != nil {
			if errors.Is(err, storage.ErrBadBlock) {
				continue // never allocated on this device: keep probing
			}
			return storage.NilBlock, fmt.Errorf("wal: probe header block %d: %w", id, err)
		}
		if len(blk) >= 8 && getUint32(blk[0:4]) == logMagic && getUint32(blk[4:8]) == logVersion {
			return id, nil
		}
	}
	return storage.NilBlock, ErrNotWAL
}

// dirtyPast returns how many bytes past the logical end carry data: the
// distance from end to the last non-zero byte (0 when the tail region is
// clean zeros).
func dirtyPast(data []byte, end int64) int64 {
	for i := len(data) - 1; i >= int(end); i-- {
		if data[i] != 0 {
			return int64(i+1) - end
		}
	}
	return 0
}

// truncateTail zeroes everything past the logical end and syncs, restoring
// the invariant that bytes beyond l.size read as zero.
func (l *Log) truncateTail(data []byte) error {
	bs := int64(l.dev.BlockSize())
	idx := int(l.size / bs)
	if rem := l.size % bs; rem > 0 {
		if err := l.dev.Write(l.blocks[idx], data[int64(idx)*bs:l.size]); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		idx++
	}
	for ; idx < len(l.blocks); idx++ {
		if err := l.dev.Write(l.blocks[idx], nil); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if err := l.Sync(); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	return nil
}

// Append writes framed record bytes (built with AppendRecord) at the
// logical end. The write covers the partial tail block plus any new
// blocks in one contiguous device run. A failed append leaves the logical
// state unchanged; bytes it may have scribbled past the logical end are
// invisible to recovery (truncated as a torn tail at worst).
func (l *Log) Append(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	bs := int64(l.dev.BlockSize())
	newSize := l.size + int64(len(p))
	need := int((newSize + bs - 1) / bs)
	if n := need - len(l.blocks); n > 0 {
		var first storage.BlockID
		if n == 1 {
			first = l.dev.Alloc()
		} else {
			first = l.dev.AllocRun(n)
		}
		if first == storage.NilBlock {
			return fmt.Errorf("wal: append: %w", storage.ErrDeviceFull)
		}
		for i := 0; i < n; i++ {
			l.blocks = append(l.blocks, first+storage.BlockID(i))
		}
	}
	dirty := int(l.size / bs) // index of the first block the write touches
	buf := make([]byte, 0, int64(len(l.tail))+int64(len(p)))
	buf = append(buf, l.tail...)
	buf = append(buf, p...)
	nDirty := need - dirty
	if nDirty > 1 && contiguous(l.blocks[dirty:need]) {
		if err := l.dev.WriteRun(l.blocks[dirty], nDirty, buf); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
	} else {
		for i := 0; i < nDirty; i++ {
			lo := int64(i) * bs
			hi := lo + bs
			if hi > int64(len(buf)) {
				hi = int64(len(buf))
			}
			if err := l.dev.Write(l.blocks[dirty+i], buf[lo:hi]); err != nil {
				return fmt.Errorf("wal: append: %w", err)
			}
		}
	}
	l.size = newSize
	if rem := newSize % bs; rem > 0 {
		l.tail = append(l.tail[:0], buf[int64(len(buf))-rem:]...)
	} else {
		l.tail = l.tail[:0]
	}
	return nil
}

// contiguous reports whether the block IDs form one ascending run.
func contiguous(ids []storage.BlockID) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			return false
		}
	}
	return true
}

// metaSyncer is the durability hook a backing device may offer (FileDisk
// does: SyncMeta persists its allocator header and fsyncs the file).
type metaSyncer interface{ SyncMeta() error }

// Sync makes all appended bytes durable by syncing the innermost device
// that supports it. Purely in-memory devices have nothing to sync.
func (l *Log) Sync() error {
	dev := l.dev
	for dev != nil {
		if s, ok := dev.(metaSyncer); ok {
			if err := s.SyncMeta(); err != nil {
				return fmt.Errorf("wal: sync: %w", err)
			}
			return nil
		}
		u, ok := dev.(interface{ Under() storage.Device })
		if !ok {
			return nil
		}
		dev = u.Under()
	}
	return nil
}

// Size returns the logical log size in bytes (framed records only).
func (l *Log) Size() int64 { return l.size }

// LastSeq returns the sequence number of the last record in the log (0 if
// empty). The Appender continues from it.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// noteAppended records that frames up to seq were appended; the Appender
// calls it so a rotated-in Log keeps LastSeq meaningful.
func (l *Log) noteAppended(seq uint64) { l.lastSeq = seq }

// putUint32 and getUint32 are tiny little-endian helpers (kept local so
// log.go reads without a binary import at every call site).
func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
