// Package wal implements a write-ahead log for the engine's mutation path.
//
// The generational Save in the root package is checkpoint-only durability:
// every Add/Delete since the last snapshot dies with a crash. At the
// ROADMAP's ingest rates a full-snapshot rewrite per acknowledged mutation
// is the wrong unit of durability, so the engine logs each mutation here
// first — an append-only, CRC-framed record stream on a storage.Device —
// and replays the suffix on open: recovered state = last snapshot + log.
//
// Record framing (all integers little-endian):
//
//	[4B payload length][4B CRC32-C of payload][payload]
//
// A zero length marks the clean end of the log (fresh blocks read as
// zeros, so the terminator is free). The payload carries a sequence
// number, an opcode, and the mutation body; sequence numbers increase by
// exactly one per record, so stale bytes beyond a truncation point can
// never be mistaken for live records even if their CRC happens to hold.
//
// Recovery scans frames until the first corrupt or partial one. Everything
// before it is returned for replay; everything from it on is a torn tail —
// reported via *TornTailError and physically zeroed, so a second open of
// the same log sees a clean end and returns byte-identical records
// (replay is deterministic).
//
// Durability is group-committed: Appender batches concurrent appends into
// one device write + one fsync and acknowledges a waiter only once its
// record is on stable storage. The log itself performs no locking and no
// I/O under any mutex — the Appender serializes writers and always
// releases its mutex before touching the device.
package wal

import "fmt"

// Op is a mutation opcode.
type Op uint8

const (
	// OpAdd records an object insertion.
	OpAdd Op = 1
	// OpDelete records an object deletion.
	OpDelete Op = 2
)

// String returns "add" or "delete".
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one logged mutation. Seq is assigned by the Appender at append
// time and validated (strictly sequential) on recovery.
type Record struct {
	Seq uint64
	Op  Op
	ID  uint64
	// Tag is an opaque value carried for the log's owner (the sharded
	// engine stores the global object ID here so recovery can rebuild its
	// global→shard assignment). The log itself never interprets it.
	Tag uint64
	// Point and Text are only meaningful for OpAdd.
	Point []float64
	Text  string
}

// TornTailError reports that recovery found a corrupt or partial record
// and truncated the log there. Everything before Offset was recovered;
// DroppedBytes of non-zero tail data from Offset on were discarded.
type TornTailError struct {
	// Offset is the logical byte offset of the first bad frame.
	Offset int64
	// DroppedBytes counts the non-zero bytes discarded from Offset to the
	// end of the log's allocated region (zero padding is not data).
	DroppedBytes int64
	// Reason says what was wrong with the frame at Offset.
	Reason string
}

// Error implements error.
func (e *TornTailError) Error() string {
	return fmt.Sprintf("wal: torn tail at offset %d (%s): dropped %d bytes", e.Offset, e.Reason, e.DroppedBytes)
}

// Recovery is the result of opening an existing log.
type Recovery struct {
	// Records are the intact records, in append order.
	Records []Record
	// Torn is non-nil when a corrupt or partial tail was found (and
	// physically truncated).
	Torn *TornTailError
}
