package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"spatialkeyword/internal/storage"
)

const testBlockSize = 128

func addRec(id uint64, text string) Record {
	return Record{Op: OpAdd, ID: id, Point: []float64{float64(id), -float64(id)}, Text: text}
}

func delRec(id uint64) Record {
	return Record{Op: OpDelete, ID: id}
}

// normalize clears the fields recovery fills in structurally (nil vs empty
// slices) so reflect.DeepEqual compares content.
func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Seq != y.Seq || x.Op != y.Op || x.ID != y.ID || x.Tag != y.Tag || x.Text != y.Text {
			return false
		}
		if len(x.Point) != len(y.Point) {
			return false
		}
		for j := range x.Point {
			if x.Point[j] != y.Point[j] {
				return false
			}
		}
	}
	return true
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dev := storage.NewDisk(testBlockSize)
	l, err := Create(dev)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a := NewAppender(l, 0)
	want := []Record{
		addRec(0, "cuban cafe espresso"),
		addRec(1, "beach bar cocktails"),
		delRec(0),
		addRec(2, ""),
	}
	for i, r := range want {
		seq, err := a.Append(r)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d", i, seq)
		}
		want[i].Seq = seq
	}
	_, rec, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.Torn != nil {
		t.Fatalf("unexpected torn tail: %v", rec.Torn)
	}
	if !recordsEqual(rec.Records, want) {
		t.Fatalf("recovered %+v, want %+v", rec.Records, want)
	}
}

func TestRecoverContinuesSequence(t *testing.T) {
	dev := storage.NewDisk(testBlockSize)
	l, err := Create(dev)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a := NewAppender(l, 0)
	if _, err := a.Append(addRec(0, "first")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l2, _, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	a2 := NewAppender(l2, 0)
	if _, err := a2.Append(addRec(1, "second")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	_, rec, err := Open(dev)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec.Torn != nil || len(rec.Records) != 2 {
		t.Fatalf("recovered %d records (torn %v), want 2", len(rec.Records), rec.Torn)
	}
	if rec.Records[1].Seq != 2 || rec.Records[1].Text != "second" {
		t.Fatalf("second record %+v", rec.Records[1])
	}
}

// TestTornTailTruncated verifies the headline recovery invariant: a
// corrupt tail is reported, dropped, and physically removed, so a second
// open is clean and byte-deterministic.
func TestTornTailTruncated(t *testing.T) {
	corruptions := map[string]func(l *Log, dev *storage.Disk){
		"bit-flip in tail": func(l *Log, dev *storage.Disk) {
			pos := l.size - 5 // a byte inside the last record
			idx := int(pos / testBlockSize)
			blk, err := dev.Read(l.blocks[idx])
			if err != nil {
				panic(err)
			}
			blk[pos%testBlockSize] ^= 0x40
			if err := dev.Write(l.blocks[idx], blk); err != nil {
				panic(err)
			}
		},
		"garbage past end": func(l *Log, dev *storage.Disk) {
			id := dev.Alloc() // simulates blocks allocated by a crashed append
			buf := make([]byte, testBlockSize)
			for i := range buf {
				buf[i] = 0xAB
			}
			if err := dev.Write(id, buf); err != nil {
				panic(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dev := storage.NewDisk(testBlockSize)
			l, err := Create(dev)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			a := NewAppender(l, 0)
			for i := 0; i < 5; i++ {
				if _, err := a.Append(addRec(uint64(i), fmt.Sprintf("object number %d with some text", i))); err != nil {
					t.Fatalf("Append %d: %v", i, err)
				}
			}
			corrupt(l, dev)
			_, rec1, err := Open(dev)
			if err != nil {
				t.Fatalf("Open after corruption: %v", err)
			}
			if rec1.Torn == nil {
				t.Fatalf("expected torn tail")
			}
			var torn *TornTailError
			if !errors.As(error(rec1.Torn), &torn) {
				t.Fatalf("torn tail is not a *TornTailError")
			}
			if torn.DroppedBytes == 0 {
				t.Fatalf("torn tail dropped 0 bytes: %v", torn)
			}
			// Second open: canonical (no torn tail), identical records.
			_, rec2, err := Open(dev)
			if err != nil {
				t.Fatalf("second Open: %v", err)
			}
			if rec2.Torn != nil {
				t.Fatalf("torn tail survived truncation: %v", rec2.Torn)
			}
			if !recordsEqual(rec1.Records, rec2.Records) {
				t.Fatalf("replays differ:\n%+v\n%+v", rec1.Records, rec2.Records)
			}
		})
	}
}

// TestTornTailDropsOnlySuffix cuts the log mid-record at every possible
// byte and checks the recovered prefix is exactly the records whose bytes
// fully survived.
func TestTornTailDropsOnlySuffix(t *testing.T) {
	var stream []byte
	var boundaries []int // stream offset after each record
	for i := 0; i < 4; i++ {
		stream = AppendRecord(stream, Record{Seq: uint64(i + 1), Op: OpAdd, ID: uint64(i), Point: []float64{1, 2}, Text: "torn tail sweep"})
		boundaries = append(boundaries, len(stream))
	}
	for cut := 0; cut <= len(stream); cut++ {
		recs, end, _ := parseStream(stream[:cut])
		wantN := 0
		for _, b := range boundaries {
			if b <= cut {
				wantN++
			}
		}
		if len(recs) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), wantN)
		}
		if wantN > 0 && end != int64(boundaries[wantN-1]) {
			t.Fatalf("cut %d: end %d, want %d", cut, end, boundaries[wantN-1])
		}
	}
}

func TestStaleSequenceRejected(t *testing.T) {
	// A valid frame whose sequence number does not continue the chain is
	// stale garbage (e.g. bytes surviving from before a truncation) and
	// must not be replayed.
	var stream []byte
	stream = AppendRecord(stream, Record{Seq: 1, Op: OpAdd, ID: 0, Text: "ok"})
	stream = AppendRecord(stream, Record{Seq: 7, Op: OpAdd, ID: 1, Text: "stale"})
	recs, _, torn := parseStream(stream)
	if len(recs) != 1 || torn == nil {
		t.Fatalf("recovered %d records, torn=%v; want 1 record and a torn tail", len(recs), torn)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dev := storage.NewDisk(testBlockSize)
	l, err := Create(dev)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a := NewAppender(l, time.Millisecond)
	// With a sleeping leader, concurrent appends coalesce into few commits.
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = a.Append(addRec(uint64(i), "concurrent append"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st := a.Stats()
	if st.Appends != n {
		t.Fatalf("appends %d, want %d", st.Appends, n)
	}
	if st.Fsyncs >= n {
		t.Fatalf("group commit ran %d fsyncs for %d appends — no batching", st.Fsyncs, n)
	}
	if st.DurableSeq != n {
		t.Fatalf("durable seq %d, want %d", st.DurableSeq, n)
	}
	_, rec, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Records) != n || rec.Torn != nil {
		t.Fatalf("recovered %d records (torn %v), want %d", len(rec.Records), rec.Torn, n)
	}
}

func TestAppendAsyncThenSync(t *testing.T) {
	dev := storage.NewDisk(testBlockSize)
	l, err := Create(dev)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a := NewAppender(l, 0)
	for i := 0; i < 10; i++ {
		if _, err := a.AppendAsync(addRec(uint64(i), "batched")); err != nil {
			t.Fatalf("AppendAsync %d: %v", i, err)
		}
	}
	if err := a.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := a.Stats()
	if st.Fsyncs != 1 {
		t.Fatalf("fsyncs %d, want 1", st.Fsyncs)
	}
	_, rec, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Records) != 10 || rec.Torn != nil {
		t.Fatalf("recovered %d records (torn %v), want 10", len(rec.Records), rec.Torn)
	}
}

func TestStickyErrorAfterDeviceFault(t *testing.T) {
	dev := storage.NewFaultDevice(storage.NewDisk(testBlockSize), storage.FaultPlan{})
	l, err := Create(dev)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a := NewAppender(l, 0)
	if _, err := a.Append(addRec(0, "before the fault")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	dev.SetPlan(storage.FaultPlan{FailWritesFrom: 1})
	_, err = a.Append(addRec(1, "after the fault"))
	if err == nil {
		t.Fatalf("Append succeeded through a failing device")
	}
	if !storage.IsIOFault(err) {
		t.Fatalf("error lost fault provenance: %v", err)
	}
	// The error is sticky: later appends fail without touching the device.
	if _, err2 := a.Append(addRec(2, "still broken")); err2 == nil {
		t.Fatalf("append after sticky error succeeded")
	}
	if a.Err() == nil {
		t.Fatalf("Err() nil after fault")
	}
	// The durable prefix is still recoverable.
	dev.SetPlan(storage.FaultPlan{})
	_, rec, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Records) != 1 || rec.Records[0].Text != "before the fault" {
		t.Fatalf("recovered %+v, want the one durable record", rec.Records)
	}
}

func TestFileDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.db")
	fd, err := storage.CreateFileDisk(path, testBlockSize)
	if err != nil {
		t.Fatalf("CreateFileDisk: %v", err)
	}
	l, err := Create(fd)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a := NewAppender(l, 0)
	var want []Record
	for i := 0; i < 20; i++ {
		r := addRec(uint64(i), fmt.Sprintf("row %d spilling across file blocks for good measure", i))
		seq, err := a.Append(r)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		r.Seq = seq
		want = append(want, r)
	}
	if err := fd.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fd2, err := storage.OpenFileDisk(path)
	if err != nil {
		t.Fatalf("OpenFileDisk: %v", err)
	}
	defer fd2.Close()
	_, rec, err := Open(fd2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.Torn != nil {
		t.Fatalf("torn tail on clean reopen: %v", rec.Torn)
	}
	if !recordsEqual(rec.Records, want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
}

func TestOpenNotAWAL(t *testing.T) {
	dev := storage.NewDisk(testBlockSize)
	if _, _, err := Open(dev); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("Open on empty device: %v, want ErrNotWAL", err)
	}
	id := dev.Alloc()
	if err := dev.Write(id, []byte("not a wal header, definitely")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, _, err := Open(dev); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("Open on foreign device: %v, want ErrNotWAL", err)
	}
}

func TestCodecRejectsMalformedPayloads(t *testing.T) {
	good := encodePayload(Record{Seq: 1, Op: OpAdd, ID: 3, Point: []float64{1, 2}, Text: "x"})
	if _, err := decodePayload(good); err != nil {
		t.Fatalf("decode good payload: %v", err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"short":           good[:10],
		"truncated point": good[:20],
		"bad opcode":      append(append([]byte{}, good[:8]...), append([]byte{99}, good[9:]...)...),
		"trailing bytes":  append(append([]byte{}, good...), 1, 2, 3),
	}
	for name, p := range cases {
		if _, err := decodePayload(p); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	// Delete payloads must carry exactly the fixed header.
	del := encodePayload(Record{Seq: 2, Op: OpDelete, ID: 9})
	if _, err := decodePayload(del); err != nil {
		t.Fatalf("decode delete: %v", err)
	}
	if _, err := decodePayload(append(del, 0)); err == nil {
		t.Fatalf("decode delete with trailing byte succeeded")
	}
}

func TestCodecRoundTripPreservesValues(t *testing.T) {
	want := Record{Seq: 42, Op: OpAdd, ID: 7, Point: []float64{25.77, -80.19, 3.5}, Text: "exact float round trip"}
	got, err := decodePayload(encodePayload(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip %+v, want %+v", got, want)
	}
}
