package spatialkeyword

// MutationEvent describes one applied mutation, as delivered to the
// observer installed with SetMutationObserver.
//
// ID is the engine-local object ID. Tag is the opaque tag recorded with
// the mutation (the sharded engine stores its global object ID there; 0
// otherwise). Point and Text are the object's stored values — for deletes
// they are loaded from the object store while the delete is applied, so
// observers see the full object either way. Point is only valid for the
// duration of the observer call; copy it to retain it.
type MutationEvent struct {
	Delete bool
	ID     uint64
	Tag    uint64
	Point  []float64
	Text   string
}

// SetMutationObserver installs fn to run after every successfully applied
// mutation — Add, Delete, and ApplyReplicated on a replica. The observer
// fires post-WAL and post-apply: a mutation that failed to log or failed
// to apply is never observed, so the observed stream is exactly the
// stream a crash recovery or a follower drain reproduces. WAL replay
// during OpenEngine does not fire the observer (it is installed on an
// already-open engine); install the observer — and register any standing
// queries — before serving traffic, on the leader and every replica, to
// keep their event streams identical.
//
// Like the replication hooks, fn runs synchronously on the mutating
// goroutine and must not block on I/O. Passing nil removes the observer.
func (e *Engine) SetMutationObserver(fn func(MutationEvent)) {
	e.mutObserver = fn
}

func (e *Engine) notifyAdd(id, tag uint64, point []float64, text string) {
	if e.mutObserver != nil {
		e.mutObserver(MutationEvent{ID: id, Tag: tag, Point: point, Text: text})
	}
}

func (e *Engine) notifyDelete(id uint64, point []float64, text string) {
	if e.mutObserver != nil {
		e.mutObserver(MutationEvent{Delete: true, ID: id, Point: point, Text: text})
	}
}
