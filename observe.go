package spatialkeyword

import (
	"time"

	"spatialkeyword/internal/obs"
)

// QueryMetrics is the per-query observability record delivered to a
// MetricsSink: one per finished query, populated from the traversal
// counters the search already keeps and a disk I/O bracket. It is an alias
// of the internal obs type, so module-internal consumers (cmd/skserve,
// internal/shard) and external callers share one definition.
type QueryMetrics = obs.QueryMetrics

// MetricsSink receives one QueryMetrics per finished query. Install one
// with Engine.SetMetricsSink; implementations must be safe for concurrent
// use. obs.NewQueryRecorder provides a registry-backed implementation that
// renders Prometheus text and expvar-style JSON.
type MetricsSink = obs.Sink

// SetMetricsSink installs (or, with nil, removes) the engine's metrics
// sink. The sink is invoked once per query — after TopK, TopKRanked, and
// TopKArea calls, and when a Search stream exhausts — never per traversal
// step, so the hot path pays only plain counter increments it already
// paid before any sink existed. Install before sharing the engine between
// goroutines; the field itself is not synchronized.
func (e *Engine) SetMetricsSink(s MetricsSink) { e.sink = s }

// queryStatsOf converts the core traversal counters to the public shape.
func queryStatsOf(nodes, objects, fps, pruned, nodesEnq, objsEnq int) QueryStats {
	return QueryStats{
		NodesLoaded:     nodes,
		ObjectsLoaded:   objects,
		FalsePositives:  fps,
		EntriesPruned:   pruned,
		NodesEnqueued:   nodesEnq,
		ObjectsEnqueued: objsEnq,
	}
}

// record delivers one query's metrics to the sink, if any.
func (e *Engine) record(op string, k, keywords, results int, qs QueryStats, latency time.Duration, err error) {
	if e.sink == nil {
		return
	}
	e.sink.RecordQuery(QueryMetrics{
		Op:                op,
		Shard:             -1,
		K:                 k,
		Keywords:          keywords,
		Results:           results,
		NodesExpanded:     qs.NodesLoaded,
		EntriesPruned:     qs.EntriesPruned,
		NodesEnqueued:     qs.NodesEnqueued,
		ObjectsEnqueued:   qs.ObjectsEnqueued,
		ObjectsFetched:    qs.ObjectsLoaded,
		SigFalsePositives: qs.FalsePositives,
		RandomBlocks:      qs.BlocksRandom,
		SequentialBlocks:  qs.BlocksSequential,
		Latency:           latency,
		Err:               err != nil,
	})
}
