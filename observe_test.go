package spatialkeyword

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"spatialkeyword/internal/obs"
)

// seedGrid fills the engine with a deterministic grid of objects. Half the
// objects carry the word "alpha", a third "beta", the rest padding — so a
// conjunctive query has matches to find and subtrees to prune.
func seedGrid(tb testing.TB, e *Engine, n int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	pad := []string{"oak", "elm", "fir", "ash", "yew", "bay", "ivy", "fig"}
	for i := 0; i < n; i++ {
		words := []string{pad[rng.Intn(len(pad))], pad[rng.Intn(len(pad))]}
		if i%2 == 0 {
			words = append(words, "alpha")
		}
		if i%3 == 0 {
			words = append(words, "beta")
		}
		pt := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
		if _, err := e.Add(pt, strings.Join(words, " ")); err != nil {
			tb.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		tb.Fatal(err)
	}
}

// countTrace counts Explain trace lines containing the marker.
func countTrace(trace []string, marker string) int {
	n := 0
	for _, line := range trace {
		if strings.Contains(line, marker) {
			n++
		}
	}
	return n
}

// TestExplainTraceMatchesStats pins the trace events to the traversal
// counters on a tree that is at least two levels tall: every expand, prune,
// and enqueue line of the Explain narration must be counted by the
// identical traversal's SearchIter.Stats().
func TestExplainTraceMatchesStats(t *testing.T) {
	// 256-byte blocks cap nodes at a few entries, so 150 objects need a
	// root above the leaves.
	e := newEngine(t, Config{SignatureBytes: 8, BlockSize: 256})
	seedGrid(t, e, 150)
	if h := e.Stats().TreeHeight; h < 2 {
		t.Fatalf("tree height %d, want >= 2", h)
	}

	q := []float64{500, 500}
	results, trace, err := e.Explain(5, q, "alpha", "beta")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}

	// Re-run the identical (deterministic) traversal through the stream
	// API and pull the same number of results.
	it, err := e.Search(q, "alpha", "beta")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(results); i++ {
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("stream ended early (i=%d, err=%v)", i, err)
		}
	}
	qs := it.Stats()

	if got, want := countTrace(trace, "expand node"), qs.NodesLoaded; got != want {
		t.Errorf("expand lines = %d, NodesLoaded = %d", got, want)
	}
	if got, want := countTrace(trace, "prune "), qs.EntriesPruned; got != want {
		t.Errorf("prune lines = %d, EntriesPruned = %d", got, want)
	}
	if got, want := countTrace(trace, "enqueue subtree"), qs.NodesEnqueued; got != want {
		t.Errorf("enqueue-subtree lines = %d, NodesEnqueued = %d", got, want)
	}
	if got, want := countTrace(trace, "enqueue object"), qs.ObjectsEnqueued; got != want {
		t.Errorf("enqueue-object lines = %d, ObjectsEnqueued = %d", got, want)
	}
	if qs.NodesLoaded < 3 {
		t.Errorf("NodesLoaded = %d; a 2-level traversal should expand the root and leaves", qs.NodesLoaded)
	}
	if qs.EntriesPruned == 0 {
		t.Error("EntriesPruned = 0; the conjunctive query should prune subtrees")
	}
}

// TestSearchIterStatsFalsePositives forces signature collisions with a
// 1-byte signature and checks the stream's stats expose them: objects were
// fetched, failed text verification, and were counted as false positives.
func TestSearchIterStatsFalsePositives(t *testing.T) {
	e := newEngine(t, Config{SignatureBytes: 1, BitsPerWord: 4})
	seedGrid(t, e, 150)

	it, err := e.Search([]float64{500, 500}, "alpha", "beta")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	qs := it.Stats()
	if qs.FalsePositives == 0 {
		t.Fatal("1-byte signatures produced no false positives")
	}
	if qs.ObjectsLoaded != n+qs.FalsePositives {
		t.Errorf("ObjectsLoaded = %d, want results %d + false positives %d",
			qs.ObjectsLoaded, n, qs.FalsePositives)
	}
}

// TestEngineSinkRecords checks every query entry point delivers exactly one
// whole-engine record whose counters match the query's reported stats.
func TestEngineSinkRecords(t *testing.T) {
	e := newEngine(t, Config{SignatureBytes: 16})
	seedGrid(t, e, 60)

	var recs []QueryMetrics
	e.SetMetricsSink(obs.SinkFunc(func(m QueryMetrics) { recs = append(recs, m) }))

	q := []float64{500, 500}
	res, qs, err := e.TopKWithStats(3, q, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("topk records = %d", len(recs))
	}
	m := recs[0]
	if m.Op != "topk" || m.Shard != -1 || m.K != 3 || m.Keywords != 1 || m.Results != len(res) {
		t.Fatalf("topk record = %+v", m)
	}
	if m.NodesExpanded != qs.NodesLoaded || m.ObjectsFetched != qs.ObjectsLoaded ||
		m.SigFalsePositives != qs.FalsePositives || m.EntriesPruned != qs.EntriesPruned ||
		m.RandomBlocks != qs.BlocksRandom || m.SequentialBlocks != qs.BlocksSequential {
		t.Fatalf("topk record %+v does not match stats %+v", m, qs)
	}
	if m.Latency <= 0 {
		t.Error("topk latency not recorded")
	}

	recs = nil
	if _, err := e.TopKRanked(3, q, "alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TopKArea(3, []float64{400, 400}, []float64{600, 600}, "alpha"); err != nil {
		t.Fatal(err)
	}
	// A stream records once, when it exhausts.
	it, err := e.Search(q, "alpha", "beta")
	if err != nil {
		t.Fatal(err)
	}
	streamResults := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		streamResults++
	}
	ops := make([]string, len(recs))
	for i, r := range recs {
		ops[i] = r.Op
	}
	if fmt.Sprint(ops) != "[ranked area stream]" {
		t.Fatalf("ops = %v", ops)
	}
	if recs[2].Results != streamResults {
		t.Errorf("stream record results = %d, want %d", recs[2].Results, streamResults)
	}
}

// BenchmarkTopKSinkOverhead measures TopK over a 10k-object fixture with
// the metrics sink disabled vs recording into a registry. The sink fires
// once per query, so the delta should stay well under 5%.
func BenchmarkTopKSinkOverhead(b *testing.B) {
	e, err := NewEngine(Config{SignatureBytes: 16})
	if err != nil {
		b.Fatal(err)
	}
	seedGrid(b, e, 10000)
	recorder := obs.NewQueryRecorder(obs.NewRegistry())
	for _, mode := range []struct {
		name string
		sink MetricsSink
	}{{"off", nil}, {"on", recorder}} {
		b.Run("sink="+mode.name, func(b *testing.B) {
			e.SetMetricsSink(mode.sink)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.TopK(10, []float64{500, 500}, "alpha", "beta"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	e.SetMetricsSink(nil)
	_ = time.Now // future: report p99 from the recorder's histogram
}
