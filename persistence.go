package spatialkeyword

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/wal"
)

// Engine durability. An engine created with NewDurableEngine lives in a
// directory: the object file and the index each get a file-backed block
// device, Save checkpoints both structures plus a JSON manifest, and
// OpenEngine restores the engine from the directory.
//
//	eng, _ := spatialkeyword.NewDurableEngine(cfg, dir)
//	eng.Add(...)
//	eng.Save()
//	eng.Close()
//	...
//	eng, _ = spatialkeyword.OpenEngine(dir)
//
// Crash consistency. Inserts mutate index blocks in place and the allocator
// recycles freed blocks, so the working files (objects.db, index.db) are
// only consistent at the instant a checkpoint completes — a crash in the
// middle of later mutations or of Save itself would otherwise leave nothing
// to recover. Save therefore snapshots generationally:
//
//  1. flush + checkpoint both structures into the working files;
//  2. copy the working files to immutable objects.<G>.db / index.<G>.db
//     and describe them in manifest.<G>.json;
//  3. commit by atomically renaming a temp file over manifest.json;
//  4. prune generation G-2 (the previous generation is retained so
//     externally pinned readers — shard manifests — survive one more save).
//
// manifest.json is the single commit point: before the rename the directory
// still describes generation G-1 in full, after it generation G. OpenEngine
// recovers by copying the committed generation's snapshot back over the
// working files, discarding whatever a crash left in them.

// ErrNotDurable is returned by Save on a memory-only engine.
var ErrNotDurable = errors.New("spatialkeyword: engine has no backing directory")

const (
	manifestName = "manifest.json"
	objectsName  = "objects.db"
	indexName    = "index.db"
)

// genManifestName names the immutable per-generation manifest.
func genManifestName(gen uint64) string { return fmt.Sprintf("manifest.%d.json", gen) }

// genObjectsName names the immutable per-generation object file snapshot.
func genObjectsName(gen uint64) string { return fmt.Sprintf("objects.%d.db", gen) }

// genIndexName names the immutable per-generation index snapshot.
func genIndexName(gen uint64) string { return fmt.Sprintf("index.%d.db", gen) }

// walName names the write-ahead log that carries mutations made after
// generation gen's snapshot. It is staged (empty) alongside the snapshot,
// so the commit rename atomically switches both the checkpoint and the log
// the next open replays.
func walName(gen uint64) string { return fmt.Sprintf("wal.%d.db", gen) }

// The save/open protocol reaches the filesystem only through these
// indirections, so crash-consistency tests can kill a save at any chosen
// operation and verify that Open still recovers a consistent snapshot.
var (
	fsWriteFile = os.WriteFile
	fsRename    = os.Rename
	fsRemove    = os.Remove
	fsCopyFile  = copyFile
	fsCreateWAL = createWALFile
)

// createWALFile creates a fresh, empty write-ahead log file at path.
func createWALFile(path string, blockSize int) (*storage.FileDisk, *wal.Log, error) {
	fd, err := storage.CreateFileDisk(path, blockSize)
	if err != nil {
		return nil, nil, err
	}
	l, err := wal.Create(fd)
	if err != nil {
		return nil, nil, errors.Join(err, fd.Close())
	}
	return fd, l, nil
}

// copyFile copies src to dst (truncating) and fsyncs the result.
func copyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// manifest is the engine's durable root: everything needed to reopen.
type manifest struct {
	Config     Config   `json:"config"`
	Generation uint64   `json:"generation,omitempty"`
	TreeState  uint64   `json:"tree_state_block"`
	StoreMeta  uint64   `json:"store_meta_block"`
	Deleted    []uint64 `json:"deleted"`
	NumObjects int      `json:"num_objects"`
}

// NewDurableEngine creates an empty engine whose object file and index live
// in dir (created if needed; existing engine files are truncated — use
// OpenEngine to reopen). Call Save to persist state and Close to release
// the files.
func NewDurableEngine(cfg Config, dir string) (*Engine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spatialkeyword: create engine dir: %w", err)
	}
	bs := cfg.BlockSize
	if bs == 0 {
		bs = storage.DefaultBlockSize
	}
	objDisk, err := storage.CreateFileDisk(filepath.Join(dir, objectsName), bs)
	if err != nil {
		return nil, err
	}
	idxDisk, err := storage.CreateFileDisk(filepath.Join(dir, indexName), bs)
	if err != nil {
		return nil, errors.Join(err, objDisk.Close())
	}
	e, err := newEngineOn(cfg, objDisk, idxDisk)
	if err != nil {
		return nil, errors.Join(err, objDisk.Close(), idxDisk.Close())
	}
	e.dir = dir
	if cfg.WAL {
		// A log is only replayable on top of a committed snapshot, so a WAL
		// engine starts with an immediate empty checkpoint: Save commits
		// generation 1 and rotates in wal.1.db, making every subsequent
		// acknowledged mutation recoverable by OpenEngine.
		if err := e.Save(); err != nil {
			return nil, errors.Join(fmt.Errorf("spatialkeyword: initial wal checkpoint: %w", err), e.Close())
		}
	}
	return e, nil
}

// Generation returns the engine's last committed snapshot generation (0
// before the first successful Save).
func (e *Engine) Generation() uint64 { return e.gen }

// Save flushes pending objects, checkpoints the engine's state into the
// working files, snapshots them as a new generation, and commits it with an
// atomic manifest rename. A failed Save leaves the previous generation
// intact and recoverable. Only durable engines can Save.
func (e *Engine) Save() error {
	if e.dir == "" {
		return ErrNotDurable
	}
	if e.walBroken != nil {
		return fmt.Errorf("spatialkeyword: refusing to save with broken write-ahead log: %w", e.walBroken)
	}
	if e.walApp != nil {
		// Drain async appends so the log and the applied state agree before
		// the snapshot supersedes the log.
		if err := e.walApp.Sync(); err != nil {
			e.walBroken = err
			return err
		}
	}
	if err := e.Flush(); err != nil {
		return err
	}
	storeMeta, err := e.store.Checkpoint()
	if err != nil {
		return err
	}
	treeState, err := e.tree.Checkpoint(storage.NilBlock)
	if err != nil {
		return err
	}
	// Make the working files' bytes (data + allocator headers) visible to
	// the snapshot copy.
	for _, d := range []*storage.FileDisk{e.objFile, e.idxFile} {
		if d == nil {
			continue
		}
		if err := d.SyncMeta(); err != nil {
			return err
		}
	}
	gen := e.gen + 1
	m := manifest{
		Config:     e.cfg,
		Generation: gen,
		TreeState:  uint64(treeState),
		StoreMeta:  uint64(storeMeta),
		NumObjects: e.store.NumObjects(),
	}
	for id := range e.deleted {
		m.Deleted = append(m.Deleted, id)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	// Stage the generation: snapshot copies plus its own manifest, none of
	// which the committed state references yet.
	if err := fsCopyFile(filepath.Join(e.dir, genObjectsName(gen)), filepath.Join(e.dir, objectsName)); err != nil {
		return fmt.Errorf("spatialkeyword: snapshot objects: %w", err)
	}
	if err := fsCopyFile(filepath.Join(e.dir, genIndexName(gen)), filepath.Join(e.dir, indexName)); err != nil {
		return fmt.Errorf("spatialkeyword: snapshot index: %w", err)
	}
	if err := fsWriteFile(filepath.Join(e.dir, genManifestName(gen)), data, 0o644); err != nil {
		return err
	}
	// Stage the new generation's (empty) write-ahead log before the commit
	// point, so the committed manifest always finds its log on open. A crash
	// before the rename leaves an orphan wal.<G>.db that the next Save
	// attempt recreates (CreateFileDisk truncates).
	var newWAL *storage.FileDisk
	var newLog *wal.Log
	if e.cfg.WAL {
		bs := e.cfg.BlockSize
		if bs == 0 {
			bs = storage.DefaultBlockSize
		}
		newWAL, newLog, err = fsCreateWAL(filepath.Join(e.dir, walName(gen)), bs)
		if err != nil {
			return fmt.Errorf("spatialkeyword: stage wal: %w", err)
		}
	}
	// Commit.
	tmp := filepath.Join(e.dir, manifestName+".tmp")
	if err := fsWriteFile(tmp, data, 0o644); err != nil {
		if newWAL != nil {
			return errors.Join(err, newWAL.Close())
		}
		return err
	}
	if err := fsRename(tmp, filepath.Join(e.dir, manifestName)); err != nil {
		if newWAL != nil {
			return errors.Join(err, newWAL.Close())
		}
		return err
	}
	e.gen = gen
	if e.cfg.WAL {
		// Rotate: the snapshot now covers everything the old log held, so
		// mutations from here land in the new generation's log. The old log
		// file (wal.<G-1>.db) stays on disk for pinned readers.
		old := e.walFile
		e.walFile = newWAL
		e.walApp = wal.NewAppender(newLog, e.cfg.WALSyncWindow)
		if e.walOnFsync != nil {
			e.walApp.SetFsyncObserver(e.walOnFsync)
		}
		if old != nil {
			//skvet:ignore erroprov the old log is fully superseded by the committed snapshot; its close cannot un-commit the save
			old.Close()
		}
		if e.replOnRotate != nil {
			e.replOnRotate(gen)
		}
	}
	// Prune generation G-2; G-1 is kept for pinned readers. Best effort: a
	// failure here cannot un-commit the save.
	if gen >= 2 {
		old := gen - 2
		for _, name := range []string{genObjectsName(old), genIndexName(old), genManifestName(old), walName(old)} {
			fsRemove(filepath.Join(e.dir, name)) //nolint:errcheck
		}
	}
	return nil
}

// Close releases a durable engine's files (after persisting their device
// metadata). Memory-only engines have nothing to close.
func (e *Engine) Close() error {
	var firstErr error
	if e.walApp != nil && e.walBroken == nil {
		// Make any async-staged records durable before losing the appender.
		if err := e.walApp.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, d := range []*storage.FileDisk{e.objFile, e.idxFile, e.walFile} {
		if d == nil {
			continue
		}
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.objFile, e.idxFile, e.walFile = nil, nil, nil
	e.walApp = nil
	return firstErr
}

// OpenEngine restores a durable engine from the generation committed in
// dir's manifest.json, recovering the working files from that generation's
// snapshot (so a crash that tore the working files — or Save itself — is
// harmless).
func OpenEngine(dir string) (*Engine, error) {
	m, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	return openFromManifest(dir, m)
}

// OpenEngineAt restores a durable engine pinned to a specific committed
// generation, regardless of what manifest.json currently points at. Sharded
// manifests use this so that a crash between per-shard saves still reopens
// every shard at one mutually consistent generation. The generation must
// still be on disk (Save retains the current and previous one).
func OpenEngineAt(dir string, gen uint64) (*Engine, error) {
	if gen == 0 {
		return OpenEngine(dir)
	}
	m, err := readManifest(filepath.Join(dir, genManifestName(gen)))
	if err != nil {
		return nil, err
	}
	if m.Generation != gen {
		return nil, fmt.Errorf("spatialkeyword: manifest %s claims generation %d", genManifestName(gen), m.Generation)
	}
	return openFromManifest(dir, m)
}

// readManifest loads and parses one manifest file.
func readManifest(path string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, fmt.Errorf("spatialkeyword: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("spatialkeyword: parse manifest: %w", err)
	}
	return m, nil
}

// openFromManifest recovers the working files from m's snapshot generation
// (when it has one; legacy manifests predate snapshots) and assembles the
// engine on them.
func openFromManifest(dir string, m manifest) (*Engine, error) {
	if m.Generation > 0 {
		if err := fsCopyFile(filepath.Join(dir, objectsName), filepath.Join(dir, genObjectsName(m.Generation))); err != nil {
			return nil, fmt.Errorf("spatialkeyword: recover objects snapshot: %w", err)
		}
		if err := fsCopyFile(filepath.Join(dir, indexName), filepath.Join(dir, genIndexName(m.Generation))); err != nil {
			return nil, fmt.Errorf("spatialkeyword: recover index snapshot: %w", err)
		}
	}
	objDisk, err := storage.OpenFileDisk(filepath.Join(dir, objectsName))
	if err != nil {
		return nil, err
	}
	idxDisk, err := storage.OpenFileDisk(filepath.Join(dir, indexName))
	if err != nil {
		return nil, errors.Join(err, objDisk.Close())
	}
	objDev, idxDev := frameDevices(m.Config, objDisk, idxDisk)
	store, err := objstore.Open(objDev, storage.BlockID(m.StoreMeta))
	if err != nil {
		return nil, errors.Join(err, objDisk.Close(), idxDisk.Close())
	}
	e, err := assembleEngine(m.Config, objDisk, idxDisk, objDev, idxDev, store, storage.BlockID(m.TreeState))
	if err != nil {
		return nil, errors.Join(err, objDisk.Close(), idxDisk.Close())
	}
	e.dir = dir
	e.gen = m.Generation
	for _, id := range m.Deleted {
		e.deleted[id] = true
	}
	// Rebuild the vocabulary (idf statistics) from the object file; the
	// engine never removes deleted documents from it, so a full scan
	// reproduces the live state.
	if err := store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		e.vocab.AddDocWith(e.analyzer(), o.Text)
		return nil
	}); err != nil {
		e.Close()
		return nil, err
	}
	e.live = store.NumObjects() - len(m.Deleted)
	if m.Config.WAL && m.Generation > 0 {
		if err := e.openWAL(dir, m.Generation); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// openWAL opens generation gen's write-ahead log, replays its records on
// top of the freshly recovered snapshot, and installs the log for further
// appends. Replay is deterministic: the log was physically truncated at the
// first torn frame, so two opens of the same directory apply the same
// mutations in the same order.
func (e *Engine) openWAL(dir string, gen uint64) error {
	wd, err := storage.OpenFileDisk(filepath.Join(dir, walName(gen)))
	if err != nil {
		return fmt.Errorf("spatialkeyword: open wal: %w", err)
	}
	l, rec, err := wal.Open(wd)
	if err != nil {
		return errors.Join(fmt.Errorf("spatialkeyword: recover wal: %w", err), wd.Close())
	}
	if rec.Torn != nil {
		e.walTorn++
	}
	for _, r := range rec.Records {
		switch r.Op {
		case wal.OpAdd:
			// The record carries the ID the store assigned at log time;
			// replay onto the snapshot must reproduce it exactly.
			if got := uint64(e.store.NumObjects()); r.ID != got {
				return errors.Join(
					fmt.Errorf("spatialkeyword: wal replay: record %d adds object %d, store is at %d", r.Seq, r.ID, got),
					wd.Close())
			}
			if _, err := e.applyAdd(r.Point, r.Text); err != nil {
				return errors.Join(fmt.Errorf("spatialkeyword: wal replay add %d: %w", r.ID, err), wd.Close())
			}
		case wal.OpDelete:
			if _, err := e.applyDelete(r.ID); err != nil {
				return errors.Join(fmt.Errorf("spatialkeyword: wal replay delete %d: %w", r.ID, err), wd.Close())
			}
		default:
			return errors.Join(fmt.Errorf("spatialkeyword: wal replay: unknown op %d", r.Op), wd.Close())
		}
		e.walReplay = append(e.walReplay, WALOp{Delete: r.Op == wal.OpDelete, ID: r.ID, Tag: r.Tag})
	}
	e.walReplayRecs = rec.Records
	e.walFile = wd
	e.walApp = wal.NewAppender(l, e.cfg.WALSyncWindow)
	return nil
}

// assembleEngine builds an Engine around an existing store and a
// checkpointed tree. objDev/idxDev are the devices the structures read
// through (the file disks themselves, or their checksum framing).
func assembleEngine(cfg Config, objDisk, idxDisk *storage.FileDisk, objDev, idxDev storage.Device, store *objstore.Store, treeState storage.BlockID) (*Engine, error) {
	e, err := engineShell(cfg)
	if err != nil {
		return nil, err
	}
	e.objDisk = objDev
	e.idxDisk = idxDev
	e.objFile = objDisk
	e.idxFile = idxDisk
	e.store = store
	tree, err := core.Open(idxDev, store, e.coreOptions(), treeState)
	if err != nil {
		return nil, err
	}
	e.tree = tree
	return e, nil
}
