package spatialkeyword

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
)

// Engine durability. An engine created with NewDurableEngine lives in a
// directory: the object file and the index each get a file-backed block
// device, Save checkpoints both structures plus a JSON manifest, and
// OpenEngine restores the engine from the directory.
//
//	eng, _ := spatialkeyword.NewDurableEngine(cfg, dir)
//	eng.Add(...)
//	eng.Save()
//	eng.Close()
//	...
//	eng, _ = spatialkeyword.OpenEngine(dir)

// ErrNotDurable is returned by Save on a memory-only engine.
var ErrNotDurable = errors.New("spatialkeyword: engine has no backing directory")

const (
	manifestName = "manifest.json"
	objectsName  = "objects.db"
	indexName    = "index.db"
)

// manifest is the engine's durable root: everything needed to reopen.
type manifest struct {
	Config     Config   `json:"config"`
	TreeState  uint64   `json:"tree_state_block"`
	StoreMeta  uint64   `json:"store_meta_block"`
	Deleted    []uint64 `json:"deleted"`
	NumObjects int      `json:"num_objects"`
}

// NewDurableEngine creates an empty engine whose object file and index live
// in dir (created if needed; existing engine files are truncated — use
// OpenEngine to reopen). Call Save to persist state and Close to release
// the files.
func NewDurableEngine(cfg Config, dir string) (*Engine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spatialkeyword: create engine dir: %w", err)
	}
	bs := cfg.BlockSize
	if bs == 0 {
		bs = storage.DefaultBlockSize
	}
	objDisk, err := storage.CreateFileDisk(filepath.Join(dir, objectsName), bs)
	if err != nil {
		return nil, err
	}
	idxDisk, err := storage.CreateFileDisk(filepath.Join(dir, indexName), bs)
	if err != nil {
		objDisk.Close()
		return nil, err
	}
	e, err := newEngineOn(cfg, objDisk, idxDisk)
	if err != nil {
		objDisk.Close()
		idxDisk.Close()
		return nil, err
	}
	e.dir = dir
	return e, nil
}

// Save flushes pending objects and checkpoints the engine's state to its
// backing directory. Only durable engines can Save.
func (e *Engine) Save() error {
	if e.dir == "" {
		return ErrNotDurable
	}
	if err := e.Flush(); err != nil {
		return err
	}
	storeMeta, err := e.store.Checkpoint()
	if err != nil {
		return err
	}
	treeState, err := e.tree.Checkpoint(storage.NilBlock)
	if err != nil {
		return err
	}
	m := manifest{
		Config:     e.cfg,
		TreeState:  uint64(treeState),
		StoreMeta:  uint64(storeMeta),
		NumObjects: e.store.NumObjects(),
	}
	for id := range e.deleted {
		m.Deleted = append(m.Deleted, id)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(e.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(e.dir, manifestName))
}

// Close releases a durable engine's files (after persisting their device
// metadata). Memory-only engines have nothing to close.
func (e *Engine) Close() error {
	var firstErr error
	for _, d := range []*storage.FileDisk{e.objFile, e.idxFile} {
		if d == nil {
			continue
		}
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.objFile, e.idxFile = nil, nil
	return firstErr
}

// OpenEngine restores a durable engine saved in dir.
func OpenEngine(dir string) (*Engine, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("spatialkeyword: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("spatialkeyword: parse manifest: %w", err)
	}
	objDisk, err := storage.OpenFileDisk(filepath.Join(dir, objectsName))
	if err != nil {
		return nil, err
	}
	idxDisk, err := storage.OpenFileDisk(filepath.Join(dir, indexName))
	if err != nil {
		objDisk.Close()
		return nil, err
	}
	store, err := objstore.Open(objDisk, storage.BlockID(m.StoreMeta))
	if err != nil {
		objDisk.Close()
		idxDisk.Close()
		return nil, err
	}
	e, err := assembleEngine(m.Config, objDisk, idxDisk, store, storage.BlockID(m.TreeState))
	if err != nil {
		objDisk.Close()
		idxDisk.Close()
		return nil, err
	}
	e.dir = dir
	for _, id := range m.Deleted {
		e.deleted[id] = true
	}
	// Rebuild the vocabulary (idf statistics) from the object file; the
	// engine never removes deleted documents from it, so a full scan
	// reproduces the live state.
	if err := store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		e.vocab.AddDocWith(e.analyzer(), o.Text)
		return nil
	}); err != nil {
		e.Close()
		return nil, err
	}
	e.live = store.NumObjects() - len(m.Deleted)
	return e, nil
}

// assembleEngine builds an Engine around an existing store and a
// checkpointed tree.
func assembleEngine(cfg Config, objDisk, idxDisk *storage.FileDisk, store *objstore.Store, treeState storage.BlockID) (*Engine, error) {
	e, err := engineShell(cfg)
	if err != nil {
		return nil, err
	}
	e.objDisk = objDisk
	e.idxDisk = idxDisk
	e.objFile = objDisk
	e.idxFile = idxDisk
	e.store = store
	tree, err := core.Open(idxDisk, store, e.coreOptions(), treeState)
	if err != nil {
		return nil, err
	}
	e.tree = tree
	return e, nil
}
