package spatialkeyword

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
)

// Engine durability. An engine created with NewDurableEngine lives in a
// directory: the object file and the index each get a file-backed block
// device, Save checkpoints both structures plus a JSON manifest, and
// OpenEngine restores the engine from the directory.
//
//	eng, _ := spatialkeyword.NewDurableEngine(cfg, dir)
//	eng.Add(...)
//	eng.Save()
//	eng.Close()
//	...
//	eng, _ = spatialkeyword.OpenEngine(dir)
//
// Crash consistency. Inserts mutate index blocks in place and the allocator
// recycles freed blocks, so the working files (objects.db, index.db) are
// only consistent at the instant a checkpoint completes — a crash in the
// middle of later mutations or of Save itself would otherwise leave nothing
// to recover. Save therefore snapshots generationally:
//
//  1. flush + checkpoint both structures into the working files;
//  2. copy the working files to immutable objects.<G>.db / index.<G>.db
//     and describe them in manifest.<G>.json;
//  3. commit by atomically renaming a temp file over manifest.json;
//  4. prune generation G-2 (the previous generation is retained so
//     externally pinned readers — shard manifests — survive one more save).
//
// manifest.json is the single commit point: before the rename the directory
// still describes generation G-1 in full, after it generation G. OpenEngine
// recovers by copying the committed generation's snapshot back over the
// working files, discarding whatever a crash left in them.

// ErrNotDurable is returned by Save on a memory-only engine.
var ErrNotDurable = errors.New("spatialkeyword: engine has no backing directory")

const (
	manifestName = "manifest.json"
	objectsName  = "objects.db"
	indexName    = "index.db"
)

// genManifestName names the immutable per-generation manifest.
func genManifestName(gen uint64) string { return fmt.Sprintf("manifest.%d.json", gen) }

// genObjectsName names the immutable per-generation object file snapshot.
func genObjectsName(gen uint64) string { return fmt.Sprintf("objects.%d.db", gen) }

// genIndexName names the immutable per-generation index snapshot.
func genIndexName(gen uint64) string { return fmt.Sprintf("index.%d.db", gen) }

// The save/open protocol reaches the filesystem only through these
// indirections, so crash-consistency tests can kill a save at any chosen
// operation and verify that Open still recovers a consistent snapshot.
var (
	fsWriteFile = os.WriteFile
	fsRename    = os.Rename
	fsRemove    = os.Remove
	fsCopyFile  = copyFile
)

// copyFile copies src to dst (truncating) and fsyncs the result.
func copyFile(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// manifest is the engine's durable root: everything needed to reopen.
type manifest struct {
	Config     Config   `json:"config"`
	Generation uint64   `json:"generation,omitempty"`
	TreeState  uint64   `json:"tree_state_block"`
	StoreMeta  uint64   `json:"store_meta_block"`
	Deleted    []uint64 `json:"deleted"`
	NumObjects int      `json:"num_objects"`
}

// NewDurableEngine creates an empty engine whose object file and index live
// in dir (created if needed; existing engine files are truncated — use
// OpenEngine to reopen). Call Save to persist state and Close to release
// the files.
func NewDurableEngine(cfg Config, dir string) (*Engine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spatialkeyword: create engine dir: %w", err)
	}
	bs := cfg.BlockSize
	if bs == 0 {
		bs = storage.DefaultBlockSize
	}
	objDisk, err := storage.CreateFileDisk(filepath.Join(dir, objectsName), bs)
	if err != nil {
		return nil, err
	}
	idxDisk, err := storage.CreateFileDisk(filepath.Join(dir, indexName), bs)
	if err != nil {
		return nil, errors.Join(err, objDisk.Close())
	}
	e, err := newEngineOn(cfg, objDisk, idxDisk)
	if err != nil {
		return nil, errors.Join(err, objDisk.Close(), idxDisk.Close())
	}
	e.dir = dir
	return e, nil
}

// Generation returns the engine's last committed snapshot generation (0
// before the first successful Save).
func (e *Engine) Generation() uint64 { return e.gen }

// Save flushes pending objects, checkpoints the engine's state into the
// working files, snapshots them as a new generation, and commits it with an
// atomic manifest rename. A failed Save leaves the previous generation
// intact and recoverable. Only durable engines can Save.
func (e *Engine) Save() error {
	if e.dir == "" {
		return ErrNotDurable
	}
	if err := e.Flush(); err != nil {
		return err
	}
	storeMeta, err := e.store.Checkpoint()
	if err != nil {
		return err
	}
	treeState, err := e.tree.Checkpoint(storage.NilBlock)
	if err != nil {
		return err
	}
	// Make the working files' bytes (data + allocator headers) visible to
	// the snapshot copy.
	for _, d := range []*storage.FileDisk{e.objFile, e.idxFile} {
		if d == nil {
			continue
		}
		if err := d.SyncMeta(); err != nil {
			return err
		}
	}
	gen := e.gen + 1
	m := manifest{
		Config:     e.cfg,
		Generation: gen,
		TreeState:  uint64(treeState),
		StoreMeta:  uint64(storeMeta),
		NumObjects: e.store.NumObjects(),
	}
	for id := range e.deleted {
		m.Deleted = append(m.Deleted, id)
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	// Stage the generation: snapshot copies plus its own manifest, none of
	// which the committed state references yet.
	if err := fsCopyFile(filepath.Join(e.dir, genObjectsName(gen)), filepath.Join(e.dir, objectsName)); err != nil {
		return fmt.Errorf("spatialkeyword: snapshot objects: %w", err)
	}
	if err := fsCopyFile(filepath.Join(e.dir, genIndexName(gen)), filepath.Join(e.dir, indexName)); err != nil {
		return fmt.Errorf("spatialkeyword: snapshot index: %w", err)
	}
	if err := fsWriteFile(filepath.Join(e.dir, genManifestName(gen)), data, 0o644); err != nil {
		return err
	}
	// Commit.
	tmp := filepath.Join(e.dir, manifestName+".tmp")
	if err := fsWriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := fsRename(tmp, filepath.Join(e.dir, manifestName)); err != nil {
		return err
	}
	e.gen = gen
	// Prune generation G-2; G-1 is kept for pinned readers. Best effort: a
	// failure here cannot un-commit the save.
	if gen >= 2 {
		old := gen - 2
		for _, name := range []string{genObjectsName(old), genIndexName(old), genManifestName(old)} {
			fsRemove(filepath.Join(e.dir, name)) //nolint:errcheck
		}
	}
	return nil
}

// Close releases a durable engine's files (after persisting their device
// metadata). Memory-only engines have nothing to close.
func (e *Engine) Close() error {
	var firstErr error
	for _, d := range []*storage.FileDisk{e.objFile, e.idxFile} {
		if d == nil {
			continue
		}
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.objFile, e.idxFile = nil, nil
	return firstErr
}

// OpenEngine restores a durable engine from the generation committed in
// dir's manifest.json, recovering the working files from that generation's
// snapshot (so a crash that tore the working files — or Save itself — is
// harmless).
func OpenEngine(dir string) (*Engine, error) {
	m, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	return openFromManifest(dir, m)
}

// OpenEngineAt restores a durable engine pinned to a specific committed
// generation, regardless of what manifest.json currently points at. Sharded
// manifests use this so that a crash between per-shard saves still reopens
// every shard at one mutually consistent generation. The generation must
// still be on disk (Save retains the current and previous one).
func OpenEngineAt(dir string, gen uint64) (*Engine, error) {
	if gen == 0 {
		return OpenEngine(dir)
	}
	m, err := readManifest(filepath.Join(dir, genManifestName(gen)))
	if err != nil {
		return nil, err
	}
	if m.Generation != gen {
		return nil, fmt.Errorf("spatialkeyword: manifest %s claims generation %d", genManifestName(gen), m.Generation)
	}
	return openFromManifest(dir, m)
}

// readManifest loads and parses one manifest file.
func readManifest(path string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, fmt.Errorf("spatialkeyword: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("spatialkeyword: parse manifest: %w", err)
	}
	return m, nil
}

// openFromManifest recovers the working files from m's snapshot generation
// (when it has one; legacy manifests predate snapshots) and assembles the
// engine on them.
func openFromManifest(dir string, m manifest) (*Engine, error) {
	if m.Generation > 0 {
		if err := fsCopyFile(filepath.Join(dir, objectsName), filepath.Join(dir, genObjectsName(m.Generation))); err != nil {
			return nil, fmt.Errorf("spatialkeyword: recover objects snapshot: %w", err)
		}
		if err := fsCopyFile(filepath.Join(dir, indexName), filepath.Join(dir, genIndexName(m.Generation))); err != nil {
			return nil, fmt.Errorf("spatialkeyword: recover index snapshot: %w", err)
		}
	}
	objDisk, err := storage.OpenFileDisk(filepath.Join(dir, objectsName))
	if err != nil {
		return nil, err
	}
	idxDisk, err := storage.OpenFileDisk(filepath.Join(dir, indexName))
	if err != nil {
		return nil, errors.Join(err, objDisk.Close())
	}
	objDev, idxDev := frameDevices(m.Config, objDisk, idxDisk)
	store, err := objstore.Open(objDev, storage.BlockID(m.StoreMeta))
	if err != nil {
		return nil, errors.Join(err, objDisk.Close(), idxDisk.Close())
	}
	e, err := assembleEngine(m.Config, objDisk, idxDisk, objDev, idxDev, store, storage.BlockID(m.TreeState))
	if err != nil {
		return nil, errors.Join(err, objDisk.Close(), idxDisk.Close())
	}
	e.dir = dir
	e.gen = m.Generation
	for _, id := range m.Deleted {
		e.deleted[id] = true
	}
	// Rebuild the vocabulary (idf statistics) from the object file; the
	// engine never removes deleted documents from it, so a full scan
	// reproduces the live state.
	if err := store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		e.vocab.AddDocWith(e.analyzer(), o.Text)
		return nil
	}); err != nil {
		e.Close()
		return nil, err
	}
	e.live = store.NumObjects() - len(m.Deleted)
	return e, nil
}

// assembleEngine builds an Engine around an existing store and a
// checkpointed tree. objDev/idxDev are the devices the structures read
// through (the file disks themselves, or their checksum framing).
func assembleEngine(cfg Config, objDisk, idxDisk *storage.FileDisk, objDev, idxDev storage.Device, store *objstore.Store, treeState storage.BlockID) (*Engine, error) {
	e, err := engineShell(cfg)
	if err != nil {
		return nil, err
	}
	e.objDisk = objDev
	e.idxDisk = idxDev
	e.objFile = objDisk
	e.idxFile = idxDisk
	e.store = store
	tree, err := core.Open(idxDev, store, e.coreOptions(), treeState)
	if err != nil {
		return nil, err
	}
	e.tree = tree
	return e, nil
}
