package spatialkeyword

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDurableEngineSaveOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(Config{SignatureBytes: 16}, dir)
	if err != nil {
		t.Fatal(err)
	}
	addFigure1(t, eng)
	// Delete one hotel so the deleted set is exercised too.
	if err := eng.Delete(3); err != nil { // Hotel D
		t.Fatal(err)
	}
	want, err := eng.TopK(3, []float64{30.5, 100.0}, "pool")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, err := reopened.TopK(3, []float64{30.5, 100.0}, "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("results: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Object.ID != want[i].Object.ID || got[i].Dist != want[i].Dist {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	// Deleted object stays deleted.
	if _, err := reopened.Get(3); !errors.Is(err, ErrDeleted) {
		t.Errorf("deleted object resurrected: %v", err)
	}
	s := reopened.Stats()
	if s.Objects != 7 {
		t.Errorf("live objects = %d, want 7", s.Objects)
	}
	if s.Vocabulary == 0 {
		t.Error("vocabulary not rebuilt")
	}
	// Ranked queries (which need the vocabulary) still work.
	ranked, err := reopened.TopKRanked(3, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil || len(ranked) == 0 {
		t.Errorf("ranked after reopen: %v %v", ranked, err)
	}
	// New writes work and can be saved again.
	id, err := reopened.Add([]float64{30, 100}, "reopened resort pool")
	if err != nil {
		t.Fatal(err)
	}
	top, err := reopened.TopK(1, []float64{30.5, 100.0}, "reopened")
	if err != nil || len(top) != 1 || top[0].Object.ID != id {
		t.Fatalf("post-reopen add: %v %v", top, err)
	}
	if err := reopened.Save(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableEngineSecondReopen(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(Config{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(141))
	for i := 0; i < 300; i++ {
		text := fmt.Sprintf("shop %d %s", i, []string{"coffee", "tea", "books"}[rng.Intn(3)])
		if _, err := eng.Add([]float64{rng.Float64() * 100, rng.Float64() * 100}, text); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	// Open, mutate, save, open again.
	e2, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Add([]float64{50, 50}, "generation two vinyl"); err != nil {
		t.Fatal(err)
	}
	if err := e2.Save(); err != nil {
		t.Fatal(err)
	}
	e2.Close()

	e3, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if e3.Stats().Objects != 301 {
		t.Errorf("objects = %d", e3.Stats().Objects)
	}
	top, err := e3.TopK(1, []float64{50, 50}, "vinyl")
	if err != nil || len(top) != 1 || !strings.Contains(top[0].Object.Text, "generation two") {
		t.Errorf("second-generation object lost: %v %v", top, err)
	}
}

func TestSaveOnMemoryEngineFails(t *testing.T) {
	eng, err := NewEngine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(); !errors.Is(err, ErrNotDurable) {
		t.Errorf("Save on memory engine: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Errorf("Close on memory engine: %v", err)
	}
}

func TestOpenEngineErrors(t *testing.T) {
	if _, err := OpenEngine(t.TempDir()); err == nil {
		t.Error("open of empty dir succeeded")
	}
	// Corrupt manifest.
	dir := t.TempDir()
	eng, err := NewDurableEngine(Config{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add([]float64{1, 1}, "x"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if err := writeGarbage(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEngine(dir); err == nil {
		t.Error("garbage manifest accepted")
	}
}

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte("{not json"), 0o644)
}
