package spatialkeyword

import (
	"errors"
	"fmt"

	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/wal"
)

// Replication surface. The write-ahead log is already a totally ordered,
// CRC-framed description of every mutation since the last snapshot, which
// makes it the natural replication stream: a leader publishes each durable
// record (and each log rotation) through the hooks below, and a follower
// replays the same records through ApplyReplicated — re-logging them into
// its own WAL first, so a replica crash recovers by the ordinary OpenEngine
// path and resumes from its durable watermark. internal/repl builds the
// leader/follower machinery on top of this surface.

// DurabilityStats is the engine's WAL watermark: which snapshot generation
// the log belongs to and how far the log has advanced within it. The pair
// (Generation, DurableSeq) is a replication position — a follower holding
// it has exactly the leader's acknowledged state up to that record.
type DurabilityStats struct {
	// Enabled reports whether the engine has a live write-ahead log.
	Enabled bool `json:"enabled"`
	// Generation is the last committed snapshot generation; the current
	// log carries mutations made after it.
	Generation uint64 `json:"generation"`
	// DurableSeq is the highest fsynced log sequence number in this
	// generation (0 right after a rotation).
	DurableSeq uint64 `json:"durable_seq"`
	// StagedSeq is the highest assigned sequence number, including
	// async-staged records not yet group-committed.
	StagedSeq uint64 `json:"staged_seq"`
}

// DurabilityStats returns the engine's WAL generation/sequence watermark.
// On a non-WAL engine only the snapshot generation is meaningful.
func (e *Engine) DurabilityStats() DurabilityStats {
	ds := DurabilityStats{Generation: e.gen}
	if e.walApp != nil {
		ds.Enabled = true
		ds.DurableSeq = e.walApp.Stats().DurableSeq
		ds.StagedSeq = e.walApp.LastAssignedSeq()
	}
	return ds
}

// SetReplicationHooks installs the leader-side tail hooks: onAppend fires
// after every durably logged mutation with the engine's current generation
// and the full record (sequence number included); onRotate fires when Save
// commits a new generation and rotates the log. Either may be nil. The
// hooks run synchronously on the mutating goroutine — the engine's write
// path — so they must not block on I/O; the replication leader only stages
// the record in an in-memory ship buffer. Install before serving traffic.
func (e *Engine) SetReplicationHooks(onAppend func(gen uint64, rec wal.Record), onRotate func(newGen uint64)) {
	e.replOnAppend = onAppend
	e.replOnRotate = onRotate
}

// ApplyReplicated applies one record shipped from a leader's log. The
// record is first re-logged into the follower's own WAL — verifying that
// the locally assigned sequence number matches the leader's, i.e. the
// stream arrived gap-free — and then applied, exactly like recovery
// replay. Durability is batched: the caller syncs with SyncWAL at batch
// boundaries. Any failure is sticky (the local log and applied state may
// diverge), matching the engine's own mutation path.
func (e *Engine) ApplyReplicated(rec wal.Record) error {
	if e.walApp == nil {
		return errors.New("spatialkeyword: ApplyReplicated needs a WAL-enabled durable engine")
	}
	if e.walBroken != nil {
		return fmt.Errorf("spatialkeyword: write-ahead log broken: %w", e.walBroken)
	}
	seq, err := e.walApp.AppendAsync(wal.Record{Op: rec.Op, ID: rec.ID, Tag: rec.Tag, Point: rec.Point, Text: rec.Text})
	if err != nil {
		e.walBroken = err
		return err
	}
	if seq != rec.Seq {
		e.walBroken = fmt.Errorf("spatialkeyword: replicated record %d landed at local sequence %d", rec.Seq, seq)
		return e.walBroken
	}
	switch rec.Op {
	case wal.OpAdd:
		if got := uint64(e.store.NumObjects()); rec.ID != got {
			e.walBroken = fmt.Errorf("spatialkeyword: replicated record %d adds object %d, store is at %d", rec.Seq, rec.ID, got)
			return e.walBroken
		}
		if _, err := e.applyAdd(rec.Point, rec.Text); err != nil {
			e.walBroken = err
			return err
		}
		e.notifyAdd(rec.ID, rec.Tag, rec.Point, rec.Text)
	case wal.OpDelete:
		obj, err := e.applyDelete(rec.ID)
		if err != nil {
			e.walBroken = err
			return err
		}
		e.notifyDelete(rec.ID, obj.Point, obj.Text)
	default:
		e.walBroken = fmt.Errorf("spatialkeyword: replicated record %d has unknown op %d", rec.Seq, rec.Op)
		return e.walBroken
	}
	if e.walOnAppend != nil {
		e.walOnAppend()
	}
	return nil
}

// SyncWAL group-commits every async-staged WAL record — the follower's
// batch boundary. A no-op without a WAL.
func (e *Engine) SyncWAL() error {
	if e.walApp == nil {
		return nil
	}
	if err := e.walApp.Sync(); err != nil {
		e.walBroken = err
		return err
	}
	return nil
}

// WALReplayRecords returns the full records (points and text included)
// the open of this engine replayed from its write-ahead log, in log
// order. A restarted leader seeds its current-generation ship buffer from
// them, so followers can resume mid-generation across leader restarts.
func (e *Engine) WALReplayRecords() []wal.Record {
	return e.walReplayRecs
}

// SnapshotFileNames returns the immutable per-generation file names a
// committed generation consists of, relative to the engine directory. The
// replication leader serves these bytes for follower bootstrap; the
// follower writes them under the same names.
func SnapshotFileNames(gen uint64) (objects, index, manifest string) {
	return genObjectsName(gen), genIndexName(gen), genManifestName(gen)
}

// WALFileName returns the name of generation gen's write-ahead log file,
// relative to the engine directory.
func WALFileName(gen uint64) string { return walName(gen) }

// ManifestFileName is the committed-manifest name an engine directory is
// opened from.
const ManifestFileName = manifestName

// CreateEmptyWAL creates a fresh, empty write-ahead log file at path — the
// follower's bootstrap staging step: a downloaded snapshot is only
// openable once its generation's (empty) log exists beside it.
func CreateEmptyWAL(path string, blockSize int) error {
	if blockSize == 0 {
		blockSize = storage.DefaultBlockSize
	}
	fd, _, err := createWALFile(path, blockSize)
	if err != nil {
		return err
	}
	return fd.Close()
}

// PeekManifest reads the engine configuration and generation out of a
// manifest file without opening the engine. The replication follower uses
// it to learn the block size and generation of a downloaded snapshot.
func PeekManifest(path string) (Config, uint64, error) {
	m, err := readManifest(path)
	if err != nil {
		return Config{}, 0, err
	}
	return m.Config, m.Generation, nil
}
