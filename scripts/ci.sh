#!/bin/sh
# ci.sh — run the same checks as .github/workflows/ci.yml locally.
#
#   build   go build + go vet
#   lint    gofmt -l (+ staticcheck when installed)
#   analyze skvet, the project's own invariant passes (cmd/skvet)
#   test    go test -race ./...
#   cover   coverage with the CI floor (scripts/coverage.sh)
#   bench   benchmark-regression gate against benchmarks/baseline.json
#           (the one definition of the gated workload: ci.yml bench-smoke
#           and the nightly bench.yml both invoke this step)
#   fuzz    every Fuzz target for FUZZTIME (default 30s) each
#   all     everything above (the default)
#
# staticcheck is optional locally: if the binary is not on PATH the lint
# step prints a warning and moves on, while CI always installs and runs it.
set -eu

cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$1"; }

run_build() {
	step build
	go build ./...
	go vet ./...
}

run_lint() {
	step lint
	out="$(gofmt -l .)"
	if [ -n "$out" ]; then
		echo "gofmt needs to be run on:" >&2
		echo "$out" >&2
		exit 1
	fi
	if command -v staticcheck >/dev/null 2>&1; then
		staticcheck ./...
	else
		echo "staticcheck not installed; skipping (CI runs it)" >&2
	fi
}

run_analyze() {
	step analyze
	# All 8 passes, including hotalloc's `go build -gcflags=-m=2` gate.
	# hotalloc inherits GOFLAGS/GOCACHE, so a CI runner that has already
	# built the tree replays cached compiler diagnostics instead of
	# recompiling cold.
	go run ./cmd/skvet ./...
	# Informational: the standing-exception audit, so every skvet:ignore
	# and its justification shows up in the CI log.
	go run ./cmd/skvet -ignores ./...
}

run_test() {
	step test
	go test -race ./...
}

run_cover() {
	step cover
	sh scripts/coverage.sh 70
}

run_bench() {
	step bench
	go run ./cmd/skbench \
		-dataset restaurants -experiment vary-k,ingest,repl,fence-churn,hotpath,skql \
		-scale 0.01 -queries 5 -seed 1 \
		-json -out benchmarks -baseline benchmarks/baseline.json
}

run_fuzz() {
	step fuzz
	budget="${FUZZTIME:-30s}"
	# go test accepts a single -fuzz target per invocation, so discover
	# every Fuzz function and give each its own run.
	grep -rl '^func Fuzz' --include='*_test.go' . | while read -r file; do
		dir="$(dirname "$file")"
		sed -n 's/^func \(Fuzz[A-Za-z0-9_]*\).*/\1/p' "$file" | while read -r target; do
			echo "fuzz $dir $target ($budget)"
			go test "$dir" -run '^$' -fuzz "^${target}\$" -fuzztime "$budget"
		done
	done
}

case "${1:-all}" in
build) run_build ;;
lint) run_lint ;;
analyze) run_analyze ;;
test) run_test ;;
cover) run_cover ;;
bench) run_bench ;;
fuzz) run_fuzz ;;
all)
	run_build
	run_lint
	run_analyze
	run_test
	run_cover
	run_bench
	run_fuzz
	;;
*)
	echo "usage: scripts/ci.sh [build|lint|analyze|test|cover|bench|fuzz|all]" >&2
	exit 2
	;;
esac
