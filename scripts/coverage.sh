#!/bin/sh
# coverage.sh [floor]
# Runs the internal packages with coverage and fails if total statement
# coverage is below the floor (percent, default 70). Writes coverage.out
# in the working directory.
set -eu

floor="${1:-70}"

go test -coverprofile=coverage.out ./internal/...
total="$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
echo "total internal coverage: ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || {
	echo "coverage ${total}% is below the ${floor}% floor" >&2
	exit 1
}
