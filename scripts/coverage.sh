#!/bin/sh
# coverage.sh [floor]
# Runs the internal packages with coverage and fails if total statement
# coverage is below the floor (percent, default 70). The profile is
# written outside the tree (set COVERPROFILE to keep it somewhere
# specific) so a stale coverage.out can never land at the repo root
# again.
set -eu

floor="${1:-70}"

profile="${COVERPROFILE:-}"
if [ -z "$profile" ]; then
	profile="$(mktemp "${TMPDIR:-/tmp}/skcover.XXXXXX")"
	trap 'rm -f "$profile"' EXIT
fi

go test -coverprofile="$profile" ./internal/...
total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
echo "total internal coverage: ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || {
	echo "coverage ${total}% is below the ${floor}% floor" >&2
	exit 1
}
