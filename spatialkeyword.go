// Package spatialkeyword is a Go implementation of the IR²-Tree from
// "Keyword Search on Spatial Databases" (De Felipe, Hristidis, Rishe,
// ICDE 2008): an index answering top-k spatial keyword queries — "the k
// objects nearest to a point whose text contains these keywords" — by
// combining an R-Tree with superimposed text signatures so that spatial and
// textual pruning happen in a single incremental traversal.
//
// The Engine type is the high-level entry point:
//
//	eng, _ := spatialkeyword.NewEngine(spatialkeyword.Config{})
//	eng.Add([]float64{25.77, -80.19}, "cuban cafe espresso pastelitos")
//	eng.Add([]float64{25.79, -80.13}, "beach bar cocktails live music")
//	results, _ := eng.TopK(5, []float64{25.78, -80.18}, "espresso")
//
// Lower-level building blocks (the disk simulator, the R-Tree, signature
// files, the inverted-index baseline, the experiment harness) live under
// internal/; the cmd/ tools and examples/ directory show them in action.
package spatialkeyword

import (
	"errors"
	"fmt"
	"time"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// Config parameterizes an Engine. The zero value is a production-reasonable
// 2-d IR²-Tree with 64-byte signatures on 4 KB blocks.
type Config struct {
	// SignatureBytes is the leaf signature length. Longer signatures mean
	// fewer false positives but a larger index. Zero means 64.
	SignatureBytes int
	// BitsPerWord is how many signature bits each word sets. Zero means 4.
	BitsPerWord int
	// Multilevel selects the MIR²-Tree variant: per-level optimal signature
	// lengths, better query pruning, much costlier updates. When set,
	// ExpectedWordsPerObject must be positive.
	Multilevel bool
	// ExpectedWordsPerObject is the anticipated mean number of distinct
	// words per object (used to size multilevel signatures).
	ExpectedWordsPerObject float64
	// ExpectedVocabulary is the anticipated corpus vocabulary size (caps
	// multilevel signature growth). Zero means 100,000.
	ExpectedVocabulary int
	// Dim is the spatial dimensionality. Zero means 2.
	Dim int
	// BlockSize is the simulated disk block size. Zero means 4096.
	BlockSize int
	// RemoveStopwords drops common English stopwords from documents and
	// queries before indexing.
	RemoveStopwords bool
	// Stemming applies Porter stemming so query keywords match every
	// inflection of indexed words ("fishing" matches "fish", "fished", ...).
	Stemming bool
	// Checksums frames every disk block with a CRC32-C trailer, verified on
	// read, so silent corruption (bit rot, torn writes) surfaces as a typed
	// error instead of being deserialized into a wrong tree. Costs four
	// bytes of payload per block plus one CRC per block access.
	Checksums bool
}

// Object is a spatial object: a point location and a text description.
type Object struct {
	// ID is assigned by the engine in insertion order, starting at 0.
	ID uint64
	// Point is the object's location.
	Point []float64
	// Text is the object's description; keyword matching is case-insensitive
	// on its words.
	Text string
}

// Result is one answer of a distance-first query.
type Result struct {
	Object Object
	// Dist is the Euclidean distance from the query point.
	Dist float64
}

// RankedResult is one answer of a ranked (general) query.
type RankedResult struct {
	Object Object
	// Dist is the Euclidean distance from the query point.
	Dist float64
	// IRScore is the tf-idf relevance of the object's text to the keywords.
	IRScore float64
	// Score is the combined rank value (higher is better).
	Score float64
}

// QueryStats describes the work one query performed.
type QueryStats struct {
	// NodesLoaded is the number of index nodes read.
	NodesLoaded int
	// ObjectsLoaded is the number of objects read from the object file.
	ObjectsLoaded int
	// FalsePositives is how many loaded objects were signature false
	// positives.
	FalsePositives int
	// EntriesPruned is how many index entries the signature check dropped
	// (subtrees and objects never visited).
	EntriesPruned int
	// NodesEnqueued and ObjectsEnqueued count entries that passed the
	// signature check and entered the traversal's priority queue.
	NodesEnqueued, ObjectsEnqueued int
	// BlocksRandom and BlocksSequential are the disk block accesses.
	BlocksRandom, BlocksSequential uint64
	// Degraded reports that the answer may be incomplete because one or
	// more shards of a sharded engine were unavailable (storage faults).
	// Single-engine queries never set it.
	Degraded bool
}

// Stats describes an engine's contents and footprint.
type Stats struct {
	// Objects is the number of live (non-deleted) objects.
	Objects int
	// IndexMB and ObjectFileMB are the on-disk footprints.
	IndexMB, ObjectFileMB float64
	// TreeHeight is the number of index levels.
	TreeHeight int
	// Vocabulary is the number of distinct words ever indexed.
	Vocabulary int
}

// ErrDeleted is returned when operating on a deleted object.
var ErrDeleted = errors.New("spatialkeyword: object deleted")

// ErrUnknownID is returned for out-of-range object IDs.
var ErrUnknownID = errors.New("spatialkeyword: unknown object id")

// Engine is an in-process spatial keyword search engine backed by an
// IR²-Tree (or MIR²-Tree) over a simulated disk. Adds are buffered and
// flushed automatically before queries; see Flush. An Engine is safe for
// concurrent readers once flushed; writers (Add, Delete, Flush) need
// external exclusion against readers.
type Engine struct {
	cfg     Config
	dim     int
	objDisk storage.Device
	idxDisk storage.Device
	store   *objstore.Store
	tree    *core.IR2Tree
	vocab   *textutil.Vocabulary

	// Durable engines (NewDurableEngine / OpenEngine) also track their
	// backing directory, file devices, and last committed snapshot
	// generation; see persistence.go.
	dir     string
	objFile *storage.FileDisk
	idxFile *storage.FileDisk
	gen     uint64

	pending []uint64 // object IDs appended but not yet indexed
	deleted map[uint64]bool
	live    int

	sink MetricsSink // per-query observability sink; nil = disabled
}

// engineShell builds an Engine with defaults applied but no devices or
// structures attached.
func engineShell(cfg Config) (*Engine, error) {
	dim := cfg.Dim
	if dim == 0 {
		dim = 2
	}
	return &Engine{
		cfg:     cfg,
		dim:     dim,
		vocab:   textutil.NewVocabulary(),
		deleted: make(map[uint64]bool),
	}, nil
}

// analyzer returns the engine's text pipeline (nil for the plain default).
func (e *Engine) analyzer() *textutil.Analyzer {
	if !e.cfg.RemoveStopwords && !e.cfg.Stemming {
		return nil
	}
	a := &textutil.Analyzer{Stemming: e.cfg.Stemming}
	if e.cfg.RemoveStopwords {
		a.Stopwords = textutil.DefaultStopwords()
	}
	return a
}

// coreOptions derives the IR²-Tree options from the engine configuration,
// deterministically, so a saved engine reopens with identical structure.
func (e *Engine) coreOptions() core.Options {
	cfg := e.cfg
	sigBytes := cfg.SignatureBytes
	if sigBytes == 0 {
		sigBytes = 64
	}
	k := cfg.BitsPerWord
	if k == 0 {
		k = sigfile.DefaultBitsPerWord
	}
	vocabCap := cfg.ExpectedVocabulary
	if vocabCap == 0 {
		vocabCap = 100000
	}
	return core.Options{
		LeafSignature:     sigfile.Config{LengthBytes: sigBytes, BitsPerWord: k},
		Multilevel:        cfg.Multilevel,
		AvgWordsPerObject: cfg.ExpectedWordsPerObject,
		VocabSize:         vocabCap,
		Dim:               e.dim,
		Analyzer:          e.analyzer(),
	}
}

// frameDevices applies the configuration's opt-in block framing (checksum
// trailers) on top of the raw devices.
func frameDevices(cfg Config, objDev, idxDev storage.Device) (storage.Device, storage.Device) {
	if cfg.Checksums {
		return storage.NewChecksumDisk(objDev), storage.NewChecksumDisk(idxDev)
	}
	return objDev, idxDev
}

// InjectFault installs (or clears, with nil) a fault-injection hook on both
// of the engine's devices, reaching through checksum framing to the real
// device. It reports whether both devices accepted the hook; fault-tolerance
// tests use it to make a live engine's storage fail on demand.
func (e *Engine) InjectFault(f storage.FaultFunc) bool {
	ok := true
	for _, dev := range []storage.Device{e.objDisk, e.idxDisk} {
		if !setDeviceFault(dev, f) {
			ok = false
		}
	}
	return ok
}

// setDeviceFault finds the innermost device that accepts fault hooks.
func setDeviceFault(dev storage.Device, f storage.FaultFunc) bool {
	for dev != nil {
		if fd, ok := dev.(interface{ SetFault(storage.FaultFunc) }); ok {
			fd.SetFault(f)
			return true
		}
		u, ok := dev.(interface{ Under() storage.Device })
		if !ok {
			return false
		}
		dev = u.Under()
	}
	return false
}

// newEngineOn assembles a fresh engine on the given devices.
func newEngineOn(cfg Config, objDev, idxDev storage.Device) (*Engine, error) {
	e, err := engineShell(cfg)
	if err != nil {
		return nil, err
	}
	if fd, ok := objDev.(*storage.FileDisk); ok {
		e.objFile = fd
	}
	if fd, ok := idxDev.(*storage.FileDisk); ok {
		e.idxFile = fd
	}
	objDev, idxDev = frameDevices(cfg, objDev, idxDev)
	e.objDisk = objDev
	e.idxDisk = idxDev
	e.store = objstore.New(objDev)
	tree, err := core.New(idxDev, e.store, e.coreOptions())
	if err != nil {
		return nil, err
	}
	e.tree = tree
	return e, nil
}

// NewEngine creates an empty in-memory engine.
func NewEngine(cfg Config) (*Engine, error) {
	bs := cfg.BlockSize
	if bs == 0 {
		bs = storage.DefaultBlockSize
	}
	return newEngineOn(cfg, storage.NewDisk(bs), storage.NewDisk(bs))
}

// Add appends an object and schedules it for indexing; it returns the
// object's ID. The object becomes queryable at the next query (or Flush).
func (e *Engine) Add(point []float64, text string) (uint64, error) {
	if len(point) != e.dim {
		return 0, fmt.Errorf("spatialkeyword: point has %d dimensions, engine uses %d", len(point), e.dim)
	}
	id, _, err := e.store.Append(geo.NewPoint(point...), text)
	if err != nil {
		return uint64(id), err
	}
	e.vocab.AddDocWith(e.analyzer(), text)
	e.pending = append(e.pending, uint64(id))
	e.live++
	return uint64(id), nil
}

// Flush durably writes buffered objects and indexes them. Queries call it
// implicitly; explicit calls let callers control when indexing work happens.
func (e *Engine) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	if err := e.store.Sync(); err != nil {
		return err
	}
	for _, id := range e.pending {
		obj, err := e.store.GetByID(objstore.ID(id))
		if err != nil {
			return err
		}
		if err := e.tree.Insert(obj, e.store.Ptrs()[id]); err != nil {
			return err
		}
	}
	e.pending = e.pending[:0]
	return nil
}

// Get returns a stored object by ID.
func (e *Engine) Get(id uint64) (Object, error) {
	if id >= uint64(e.store.NumObjects()) {
		return Object{}, fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	if e.deleted[id] {
		return Object{}, fmt.Errorf("%w: %d", ErrDeleted, id)
	}
	if err := e.Flush(); err != nil {
		return Object{}, err
	}
	obj, err := e.store.GetByID(objstore.ID(id))
	if err != nil {
		return Object{}, err
	}
	return Object{ID: uint64(obj.ID), Point: obj.Point, Text: obj.Text}, nil
}

// Delete removes an object from the index. The object's row remains in the
// append-only object file but will never be returned again.
func (e *Engine) Delete(id uint64) error {
	if id >= uint64(e.store.NumObjects()) {
		return fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	if e.deleted[id] {
		return fmt.Errorf("%w: %d", ErrDeleted, id)
	}
	if err := e.Flush(); err != nil {
		return err
	}
	obj, err := e.store.GetByID(objstore.ID(id))
	if err != nil {
		return err
	}
	ok, err := e.tree.Delete(obj.Point, e.store.Ptrs()[id])
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %d not in index", ErrUnknownID, id)
	}
	e.deleted[id] = true
	e.live--
	return nil
}

// TopK returns the k objects containing every keyword, nearest to point
// first — the paper's distance-first top-k spatial keyword query.
func (e *Engine) TopK(k int, point []float64, keywords ...string) ([]Result, error) {
	res, _, err := e.TopKWithStats(k, point, keywords...)
	return res, err
}

// TopKWithStats is TopK plus per-query work counters.
func (e *Engine) TopKWithStats(k int, point []float64, keywords ...string) ([]Result, QueryStats, error) {
	var qs QueryStats
	if err := e.Flush(); err != nil {
		return nil, qs, err
	}
	if len(point) != e.dim {
		return nil, qs, fmt.Errorf("spatialkeyword: point has %d dimensions, engine uses %d", len(point), e.dim)
	}
	start := time.Now()
	m1 := storage.StartMeter(e.idxDisk)
	m2 := storage.StartMeter(e.objDisk)
	it := e.tree.Search(geo.NewPoint(point...), keywords)
	var out []Result
	var iterErr error
	for len(out) < k {
		r, ok, err := it.Next()
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			break
		}
		if e.deleted[uint64(r.Object.ID)] {
			continue
		}
		out = append(out, Result{
			Object: Object{ID: uint64(r.Object.ID), Point: r.Object.Point, Text: r.Object.Text},
			Dist:   r.Dist,
		})
	}
	st := it.Stats()
	io := m1.Stop().Add(m2.Stop())
	qs = queryStatsOf(st.NodesLoaded, st.ObjectsLoaded, st.FalsePositives,
		st.EntriesPruned, st.NodesEnqueued, st.ObjectsEnqueued)
	qs.BlocksRandom = io.Random()
	qs.BlocksSequential = io.Sequential()
	e.record("topk", k, len(keywords), len(out), qs, time.Since(start), iterErr)
	if iterErr != nil {
		return nil, qs, iterErr
	}
	return out, qs, nil
}

// TopKRanked returns the k objects with the best combined
// relevance-and-proximity score — the paper's general top-k spatial keyword
// query (objects may contain only some keywords; tf-idf relevance is
// discounted by distance).
func (e *Engine) TopKRanked(k int, point []float64, keywords ...string) ([]RankedResult, error) {
	it, err := e.SearchRanked(point, keywords...)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stop := e.MeterIOStats()
	out := make([]RankedResult, 0, k)
	var iterErr error
	for len(out) < k {
		r, ok, err := it.Next()
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	qs := it.Stats()
	io := stop()
	qs.BlocksRandom = io.Random()
	qs.BlocksSequential = io.Sequential()
	e.record("ranked", k, len(keywords), len(out), qs, time.Since(start), iterErr)
	if iterErr != nil {
		return nil, iterErr
	}
	return out, nil
}

// Stats reports the engine's contents and footprint.
func (e *Engine) Stats() Stats {
	return Stats{
		Objects:      e.live,
		IndexMB:      float64(e.idxDisk.SizeBytes()) / 1e6,
		ObjectFileMB: float64(e.objDisk.SizeBytes()) / 1e6,
		TreeHeight:   e.tree.RTree().Height(),
		Vocabulary:   e.vocab.NumWords(),
	}
}
