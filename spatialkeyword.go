// Package spatialkeyword is a Go implementation of the IR²-Tree from
// "Keyword Search on Spatial Databases" (De Felipe, Hristidis, Rishe,
// ICDE 2008): an index answering top-k spatial keyword queries — "the k
// objects nearest to a point whose text contains these keywords" — by
// combining an R-Tree with superimposed text signatures so that spatial and
// textual pruning happen in a single incremental traversal.
//
// The Engine type is the high-level entry point:
//
//	eng, _ := spatialkeyword.NewEngine(spatialkeyword.Config{})
//	eng.Add([]float64{25.77, -80.19}, "cuban cafe espresso pastelitos")
//	eng.Add([]float64{25.79, -80.13}, "beach bar cocktails live music")
//	results, _ := eng.TopK(5, []float64{25.78, -80.18}, "espresso")
//
// Lower-level building blocks (the disk simulator, the R-Tree, signature
// files, the inverted-index baseline, the experiment harness) live under
// internal/; the cmd/ tools and examples/ directory show them in action.
package spatialkeyword

import (
	"errors"
	"fmt"
	"time"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
	"spatialkeyword/internal/wal"
)

// Config parameterizes an Engine. The zero value is a production-reasonable
// 2-d IR²-Tree with 64-byte signatures on 4 KB blocks.
type Config struct {
	// SignatureBytes is the leaf signature length. Longer signatures mean
	// fewer false positives but a larger index. Zero means 64.
	SignatureBytes int
	// BitsPerWord is how many signature bits each word sets. Zero means 4.
	BitsPerWord int
	// Multilevel selects the MIR²-Tree variant: per-level optimal signature
	// lengths, better query pruning, much costlier updates. When set,
	// ExpectedWordsPerObject must be positive.
	Multilevel bool
	// ExpectedWordsPerObject is the anticipated mean number of distinct
	// words per object (used to size multilevel signatures).
	ExpectedWordsPerObject float64
	// ExpectedVocabulary is the anticipated corpus vocabulary size (caps
	// multilevel signature growth). Zero means 100,000.
	ExpectedVocabulary int
	// Dim is the spatial dimensionality. Zero means 2.
	Dim int
	// BlockSize is the simulated disk block size. Zero means 4096.
	BlockSize int
	// RemoveStopwords drops common English stopwords from documents and
	// queries before indexing.
	RemoveStopwords bool
	// Stemming applies Porter stemming so query keywords match every
	// inflection of indexed words ("fishing" matches "fish", "fished", ...).
	Stemming bool
	// NodeCacheSize bounds the engine's decoded-node cache: hot index nodes
	// are kept decoded in a packed in-memory layout so warm queries skip
	// per-entry parsing and allocation. Cache hits still pay the full
	// modeled disk I/O (and re-verify the node image against the device), so
	// disk accounting is identical with and without the cache. Zero means
	// 1024 nodes; negative disables the cache and the packed read path.
	NodeCacheSize int
	// Checksums frames every disk block with a CRC32-C trailer, verified on
	// read, so silent corruption (bit rot, torn writes) surfaces as a typed
	// error instead of being deserialized into a wrong tree. Costs four
	// bytes of payload per block plus one CRC per block access.
	Checksums bool
	// WAL gives a durable engine a write-ahead log: every Add/Delete is
	// group-committed to an append-only log before it is applied, and
	// OpenEngine replays the log suffix on top of the last Save snapshot —
	// so acknowledged mutations survive a crash without a snapshot per
	// mutation. Save truncates the log atomically with its commit point.
	// Only durable engines (NewDurableEngine) honor it.
	WAL bool
	// WALSyncWindow is the group-commit window: how long a commit leader
	// waits for more records before the shared fsync. Zero syncs
	// immediately (lowest latency, one fsync per quiet-period append);
	// a small window (e.g. 2ms) batches concurrent writers.
	WALSyncWindow time.Duration
}

// Object is a spatial object: a point location and a text description.
type Object struct {
	// ID is assigned by the engine in insertion order, starting at 0.
	ID uint64
	// Point is the object's location.
	Point []float64
	// Text is the object's description; keyword matching is case-insensitive
	// on its words.
	Text string
}

// Result is one answer of a distance-first query.
type Result struct {
	Object Object
	// Dist is the Euclidean distance from the query point.
	Dist float64
}

// RankedResult is one answer of a ranked (general) query.
type RankedResult struct {
	Object Object
	// Dist is the Euclidean distance from the query point.
	Dist float64
	// IRScore is the tf-idf relevance of the object's text to the keywords.
	IRScore float64
	// Score is the combined rank value (higher is better).
	Score float64
}

// QueryStats describes the work one query performed.
type QueryStats struct {
	// NodesLoaded is the number of index nodes read.
	NodesLoaded int
	// ObjectsLoaded is the number of objects read from the object file.
	ObjectsLoaded int
	// FalsePositives is how many loaded objects were signature false
	// positives.
	FalsePositives int
	// EntriesPruned is how many index entries the signature check dropped
	// (subtrees and objects never visited).
	EntriesPruned int
	// NodesEnqueued and ObjectsEnqueued count entries that passed the
	// signature check and entered the traversal's priority queue.
	NodesEnqueued, ObjectsEnqueued int
	// BlocksRandom and BlocksSequential are the disk block accesses.
	BlocksRandom, BlocksSequential uint64
	// Degraded reports that the answer may be incomplete because one or
	// more shards of a sharded engine were unavailable (storage faults).
	// Single-engine queries never set it.
	Degraded bool
}

// Stats describes an engine's contents and footprint.
type Stats struct {
	// Objects is the number of live (non-deleted) objects.
	Objects int
	// IndexMB and ObjectFileMB are the on-disk footprints.
	IndexMB, ObjectFileMB float64
	// TreeHeight is the number of index levels.
	TreeHeight int
	// Vocabulary is the number of distinct words ever indexed.
	Vocabulary int
}

// NodeCacheStats reports the decoded-node cache's effectiveness. Hits serve
// a warm query's node expansion without decoding (though the modeled disk
// I/O is still charged in full); invalidations count nodes dropped because
// the mutation path rewrote or freed them.
type NodeCacheStats struct {
	Hits, Misses, Evictions, Invalidations uint64
}

// ErrDeleted is returned when operating on a deleted object.
var ErrDeleted = errors.New("spatialkeyword: object deleted")

// ErrUnknownID is returned for out-of-range object IDs.
var ErrUnknownID = errors.New("spatialkeyword: unknown object id")

// Engine is an in-process spatial keyword search engine backed by an
// IR²-Tree (or MIR²-Tree) over a simulated disk. Adds are buffered and
// flushed automatically before queries; see Flush. An Engine is safe for
// concurrent readers once flushed; writers (Add, Delete, Flush) need
// external exclusion against readers.
type Engine struct {
	cfg     Config
	dim     int
	objDisk storage.Device
	idxDisk storage.Device
	store   *objstore.Store
	tree    *core.IR2Tree
	vocab   *textutil.Vocabulary

	// Durable engines (NewDurableEngine / OpenEngine) also track their
	// backing directory, file devices, and last committed snapshot
	// generation; see persistence.go.
	dir     string
	objFile *storage.FileDisk
	idxFile *storage.FileDisk
	gen     uint64

	pending []uint64 // object IDs appended but not yet indexed
	deleted map[uint64]bool
	live    int

	// Write-ahead log state (Config.WAL on a durable engine): mutations
	// are logged and group-committed before they are applied, and replayed
	// on open. See persistence.go for the log's lifecycle.
	walApp      *wal.Appender
	walFile     *storage.FileDisk
	walBroken   error               // sticky: set when the log and applied state may diverge
	walReplay   []WALOp             // mutations replayed at open, in log order
	walTorn     uint64              // torn tails truncated at open
	walOnAppend func()              // metrics hook; see SetWALObserver
	walOnFsync  func(time.Duration) // kept so Save's rotation re-installs it

	// Replication hooks (see SetReplicationHooks): the leader side of
	// internal/repl tails the log through them. walReplayRecs keeps the
	// full replayed records so a restarted leader can still serve the
	// current generation's log suffix to followers.
	replOnAppend  func(gen uint64, rec wal.Record)
	replOnRotate  func(newGen uint64)
	walReplayRecs []wal.Record

	// Mutation observer (see SetMutationObserver): fires post-WAL,
	// post-apply with the full object, on the leader write path and on
	// replicated applies. internal/fence evaluates standing queries here.
	mutObserver func(MutationEvent)

	sink MetricsSink // per-query observability sink; nil = disabled
}

// engineShell builds an Engine with defaults applied but no devices or
// structures attached.
func engineShell(cfg Config) (*Engine, error) {
	dim := cfg.Dim
	if dim == 0 {
		dim = 2
	}
	return &Engine{
		cfg:     cfg,
		dim:     dim,
		vocab:   textutil.NewVocabulary(),
		deleted: make(map[uint64]bool),
	}, nil
}

// analyzer returns the engine's text pipeline (nil for the plain default).
func (e *Engine) analyzer() *textutil.Analyzer {
	if !e.cfg.RemoveStopwords && !e.cfg.Stemming {
		return nil
	}
	a := &textutil.Analyzer{Stemming: e.cfg.Stemming}
	if e.cfg.RemoveStopwords {
		a.Stopwords = textutil.DefaultStopwords()
	}
	return a
}

// coreOptions derives the IR²-Tree options from the engine configuration,
// deterministically, so a saved engine reopens with identical structure.
func (e *Engine) coreOptions() core.Options {
	cfg := e.cfg
	sigBytes := cfg.SignatureBytes
	if sigBytes == 0 {
		sigBytes = 64
	}
	k := cfg.BitsPerWord
	if k == 0 {
		k = sigfile.DefaultBitsPerWord
	}
	vocabCap := cfg.ExpectedVocabulary
	if vocabCap == 0 {
		vocabCap = 100000
	}
	return core.Options{
		LeafSignature:     sigfile.Config{LengthBytes: sigBytes, BitsPerWord: k},
		Multilevel:        cfg.Multilevel,
		AvgWordsPerObject: cfg.ExpectedWordsPerObject,
		VocabSize:         vocabCap,
		Dim:               e.dim,
		Analyzer:          e.analyzer(),
		CacheNodes:        cfg.NodeCacheSize,
	}
}

// frameDevices applies the configuration's opt-in block framing (checksum
// trailers) on top of the raw devices.
func frameDevices(cfg Config, objDev, idxDev storage.Device) (storage.Device, storage.Device) {
	if cfg.Checksums {
		return storage.NewChecksumDisk(objDev), storage.NewChecksumDisk(idxDev)
	}
	return objDev, idxDev
}

// InjectFault installs (or clears, with nil) a fault-injection hook on all
// of the engine's devices — object file, index, and write-ahead log when
// present — reaching through checksum framing to the real device. It
// reports whether every device accepted the hook; fault-tolerance tests use
// it to make a live engine's storage fail on demand.
func (e *Engine) InjectFault(f storage.FaultFunc) bool {
	devs := []storage.Device{e.objDisk, e.idxDisk}
	if e.walFile != nil {
		devs = append(devs, e.walFile)
	}
	ok := true
	for _, dev := range devs {
		if !setDeviceFault(dev, f) {
			ok = false
		}
	}
	return ok
}

// setDeviceFault finds the innermost device that accepts fault hooks.
func setDeviceFault(dev storage.Device, f storage.FaultFunc) bool {
	for dev != nil {
		if fd, ok := dev.(interface{ SetFault(storage.FaultFunc) }); ok {
			fd.SetFault(f)
			return true
		}
		u, ok := dev.(interface{ Under() storage.Device })
		if !ok {
			return false
		}
		dev = u.Under()
	}
	return false
}

// newEngineOn assembles a fresh engine on the given devices.
func newEngineOn(cfg Config, objDev, idxDev storage.Device) (*Engine, error) {
	e, err := engineShell(cfg)
	if err != nil {
		return nil, err
	}
	if fd, ok := objDev.(*storage.FileDisk); ok {
		e.objFile = fd
	}
	if fd, ok := idxDev.(*storage.FileDisk); ok {
		e.idxFile = fd
	}
	objDev, idxDev = frameDevices(cfg, objDev, idxDev)
	e.objDisk = objDev
	e.idxDisk = idxDev
	e.store = objstore.New(objDev)
	tree, err := core.New(idxDev, e.store, e.coreOptions())
	if err != nil {
		return nil, err
	}
	e.tree = tree
	return e, nil
}

// NewEngine creates an empty in-memory engine.
func NewEngine(cfg Config) (*Engine, error) {
	bs := cfg.BlockSize
	if bs == 0 {
		bs = storage.DefaultBlockSize
	}
	return newEngineOn(cfg, storage.NewDisk(bs), storage.NewDisk(bs))
}

// Add appends an object and schedules it for indexing; it returns the
// object's ID. The object becomes queryable at the next query (or Flush).
// On a WAL-enabled engine the mutation is durable before Add returns.
func (e *Engine) Add(point []float64, text string) (uint64, error) {
	return e.AddTagged(point, text, 0)
}

// AddTagged is Add with an opaque tag recorded alongside the mutation in
// the write-ahead log. The engine never interprets the tag; the sharded
// engine stores its global object ID there so crash recovery can rebuild
// the global→shard assignment. Without a WAL the tag is simply dropped.
func (e *Engine) AddTagged(point []float64, text string, tag uint64) (uint64, error) {
	if len(point) != e.dim {
		return 0, fmt.Errorf("spatialkeyword: point has %d dimensions, engine uses %d", len(point), e.dim)
	}
	if e.walBroken != nil {
		return 0, fmt.Errorf("spatialkeyword: write-ahead log broken: %w", e.walBroken)
	}
	if e.walApp == nil {
		id, err := e.applyAdd(point, text)
		if err != nil {
			return id, err
		}
		e.notifyAdd(id, tag, point, text)
		return id, nil
	}
	// Log before apply: the record carries the ID the store will assign, so
	// replay can verify it reconstructs the same assignment.
	id := uint64(e.store.NumObjects())
	seq, err := e.walApp.Append(wal.Record{Op: wal.OpAdd, ID: id, Tag: tag, Point: point, Text: text})
	if err != nil {
		e.walBroken = err
		return 0, err
	}
	if e.walOnAppend != nil {
		e.walOnAppend()
	}
	if e.replOnAppend != nil {
		e.replOnAppend(e.gen, wal.Record{Seq: seq, Op: wal.OpAdd, ID: id, Tag: tag, Point: append([]float64(nil), point...), Text: text})
	}
	gotID, err := e.applyAdd(point, text)
	if err != nil {
		// Logged but not applied: in-memory state no longer matches the
		// durable log, so refuse further mutations until reopen.
		e.walBroken = err
		return gotID, err
	}
	e.notifyAdd(gotID, tag, point, text)
	return gotID, nil
}

// applyAdd performs the insertion against the store and index structures.
// WAL replay calls it directly (mutations in the log are already durable).
func (e *Engine) applyAdd(point []float64, text string) (uint64, error) {
	id, _, err := e.store.Append(geo.NewPoint(point...), text)
	if err != nil {
		return uint64(id), err
	}
	e.vocab.AddDocWith(e.analyzer(), text)
	e.pending = append(e.pending, uint64(id))
	e.live++
	return uint64(id), nil
}

// Flush durably writes buffered objects and indexes them. Queries call it
// implicitly; explicit calls let callers control when indexing work happens.
func (e *Engine) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	if err := e.store.Sync(); err != nil {
		return err
	}
	for _, id := range e.pending {
		obj, err := e.store.GetByID(objstore.ID(id))
		if err != nil {
			return err
		}
		if err := e.tree.Insert(obj, e.store.Ptrs()[id]); err != nil {
			return err
		}
	}
	e.pending = e.pending[:0]
	return nil
}

// Get returns a stored object by ID.
func (e *Engine) Get(id uint64) (Object, error) {
	if id >= uint64(e.store.NumObjects()) {
		return Object{}, fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	if e.deleted[id] {
		return Object{}, fmt.Errorf("%w: %d", ErrDeleted, id)
	}
	// Only flush when the requested row could still be in the unflushed
	// buffer. Pending IDs are ascending, so anything below the first pending
	// ID is already synced and readable — a Get on it must not pay write I/O.
	if len(e.pending) > 0 && id >= e.pending[0] {
		if err := e.Flush(); err != nil {
			return Object{}, err
		}
	}
	obj, err := e.store.GetByID(objstore.ID(id))
	if err != nil {
		return Object{}, err
	}
	return Object{ID: uint64(obj.ID), Point: obj.Point, Text: obj.Text}, nil
}

// Delete removes an object from the index. The object's row remains in the
// append-only object file but will never be returned again. On a
// WAL-enabled engine the deletion is durable before Delete returns.
func (e *Engine) Delete(id uint64) error {
	if id >= uint64(e.store.NumObjects()) {
		return fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	if e.deleted[id] {
		return fmt.Errorf("%w: %d", ErrDeleted, id)
	}
	if e.walBroken != nil {
		return fmt.Errorf("spatialkeyword: write-ahead log broken: %w", e.walBroken)
	}
	if e.walApp == nil {
		obj, err := e.applyDelete(id)
		if err != nil {
			return err
		}
		e.notifyDelete(id, obj.Point, obj.Text)
		return nil
	}
	seq, err := e.walApp.Append(wal.Record{Op: wal.OpDelete, ID: id})
	if err != nil {
		e.walBroken = err
		return err
	}
	if e.walOnAppend != nil {
		e.walOnAppend()
	}
	if e.replOnAppend != nil {
		e.replOnAppend(e.gen, wal.Record{Seq: seq, Op: wal.OpDelete, ID: id})
	}
	obj, err := e.applyDelete(id)
	if err != nil {
		e.walBroken = err
		return err
	}
	e.notifyDelete(id, obj.Point, obj.Text)
	return nil
}

// applyDelete performs the deletion against the index and returns the
// deleted object — it has to load the row to unindex it anyway, and the
// mutation observer wants the object's point and text without paying a
// second store read. WAL replay calls it directly.
func (e *Engine) applyDelete(id uint64) (objstore.Object, error) {
	if err := e.Flush(); err != nil {
		return objstore.Object{}, err
	}
	obj, err := e.store.GetByID(objstore.ID(id))
	if err != nil {
		return objstore.Object{}, err
	}
	ok, err := e.tree.Delete(obj.Point, e.store.Ptrs()[id])
	if err != nil {
		return obj, err
	}
	if !ok {
		return obj, fmt.Errorf("%w: %d not in index", ErrUnknownID, id)
	}
	e.deleted[id] = true
	e.live--
	return obj, nil
}

// TopK returns the k objects containing every keyword, nearest to point
// first — the paper's distance-first top-k spatial keyword query.
func (e *Engine) TopK(k int, point []float64, keywords ...string) ([]Result, error) {
	res, _, err := e.TopKWithStats(k, point, keywords...)
	return res, err
}

// TopKWithStats is TopK plus per-query work counters.
func (e *Engine) TopKWithStats(k int, point []float64, keywords ...string) ([]Result, QueryStats, error) {
	var qs QueryStats
	if err := e.Flush(); err != nil {
		return nil, qs, err
	}
	if len(point) != e.dim {
		return nil, qs, fmt.Errorf("spatialkeyword: point has %d dimensions, engine uses %d", len(point), e.dim)
	}
	start := time.Now()
	m1 := storage.StartMeter(e.idxDisk)
	m2 := storage.StartMeter(e.objDisk)
	it := e.tree.Search(geo.NewPoint(point...), keywords)
	var out []Result
	var iterErr error
	for len(out) < k {
		r, ok, err := it.Next()
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			break
		}
		if e.deleted[uint64(r.Object.ID)] {
			continue
		}
		out = append(out, Result{
			Object: Object{ID: uint64(r.Object.ID), Point: r.Object.Point, Text: r.Object.Text},
			Dist:   r.Dist,
		})
	}
	st := it.Stats()
	io := m1.Stop().Add(m2.Stop())
	qs = queryStatsOf(st.NodesLoaded, st.ObjectsLoaded, st.FalsePositives,
		st.EntriesPruned, st.NodesEnqueued, st.ObjectsEnqueued)
	qs.BlocksRandom = io.Random()
	qs.BlocksSequential = io.Sequential()
	e.record("topk", k, len(keywords), len(out), qs, time.Since(start), iterErr)
	if iterErr != nil {
		return nil, qs, iterErr
	}
	return out, qs, nil
}

// TopKRanked returns the k objects with the best combined
// relevance-and-proximity score — the paper's general top-k spatial keyword
// query (objects may contain only some keywords; tf-idf relevance is
// discounted by distance).
func (e *Engine) TopKRanked(k int, point []float64, keywords ...string) ([]RankedResult, error) {
	it, err := e.SearchRanked(point, keywords...)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stop := e.MeterIOStats()
	out := make([]RankedResult, 0, k)
	var iterErr error
	for len(out) < k {
		r, ok, err := it.Next()
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	qs := it.Stats()
	io := stop()
	qs.BlocksRandom = io.Random()
	qs.BlocksSequential = io.Sequential()
	e.record("ranked", k, len(keywords), len(out), qs, time.Since(start), iterErr)
	if iterErr != nil {
		return nil, iterErr
	}
	return out, nil
}

// WALOp is one mutation replayed from the write-ahead log at open.
type WALOp struct {
	// Delete distinguishes a replayed deletion from an insertion.
	Delete bool
	// ID is the engine-local object ID the mutation applied to.
	ID uint64
	// Tag is the opaque tag the writer attached (see AddTagged); zero for
	// deletions and untagged adds.
	Tag uint64
}

// WALInfo describes an engine's write-ahead log state.
type WALInfo struct {
	// Enabled reports whether the engine has a live log.
	Enabled bool
	// Broken is the sticky error that disabled further mutations, if any.
	Broken error
	// ReplayedRecords is how many log records the open of this engine
	// replayed on top of its snapshot.
	ReplayedRecords uint64
	// TornTails is how many torn tails the open truncated.
	TornTails uint64
	// Appends is the number of mutations logged since open.
	Appends uint64
	// Fsyncs is the number of group commits since open; Appends/Fsyncs is
	// the realized batching factor.
	Fsyncs uint64
}

// WALInfo returns the engine's write-ahead log state. On a non-WAL engine
// only the zero value is returned.
func (e *Engine) WALInfo() WALInfo {
	info := WALInfo{
		Enabled:         e.walApp != nil,
		Broken:          e.walBroken,
		ReplayedRecords: uint64(len(e.walReplay)),
		TornTails:       e.walTorn,
	}
	if e.walApp != nil {
		st := e.walApp.Stats()
		info.Appends = st.Appends
		info.Fsyncs = st.Fsyncs
	}
	return info
}

// WALReplay returns the mutations the open of this engine replayed from
// the write-ahead log, in log order. The sharded engine consumes the tags
// to rebuild its global assignment after a crash.
func (e *Engine) WALReplay() []WALOp {
	return e.walReplay
}

// SetWALObserver installs metrics hooks: onAppend fires after every logged
// mutation, onFsync after every durable group commit with the sync's
// duration. Either may be nil; calls on a non-WAL engine are no-ops.
func (e *Engine) SetWALObserver(onAppend func(), onFsync func(time.Duration)) {
	if e.walApp == nil {
		return
	}
	e.walOnAppend = onAppend
	e.walOnFsync = onFsync
	e.walApp.SetFsyncObserver(onFsync)
}

// NodeCacheStats reports the decoded-node cache counters accumulated since
// the engine was created (all zero when Config.NodeCacheSize is negative).
func (e *Engine) NodeCacheStats() NodeCacheStats {
	st := e.tree.NodeCacheStats()
	return NodeCacheStats{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
	}
}

// Stats reports the engine's contents and footprint.
func (e *Engine) Stats() Stats {
	return Stats{
		Objects:      e.live,
		IndexMB:      float64(e.idxDisk.SizeBytes()) / 1e6,
		ObjectFileMB: float64(e.objDisk.SizeBytes()) / 1e6,
		TreeHeight:   e.tree.RTree().Height(),
		Vocabulary:   e.vocab.NumWords(),
	}
}
