package spatialkeyword

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func newEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// addFigure1 loads the paper's running-example hotels.
func addFigure1(t *testing.T, e *Engine) {
	t.Helper()
	rows := []struct {
		lat, lon float64
		text     string
	}{
		{25.4, -80.1, "Hotel A tennis court, gift shop, spa, Internet"},
		{47.3, -122.2, "Hotel B wireless Internet, pool, golf course"},
		{35.5, 139.4, "Hotel C spa, continental suites, pool"},
		{39.5, 116.2, "Hotel D sauna, pool, conference rooms"},
		{51.3, -0.5, "Hotel E dry cleaning, free lunch, pets"},
		{40.4, -73.5, "Hotel F safe box, concierge, internet, pets"},
		{-33.2, -70.4, "Hotel G Internet, airport transportation, pool"},
		{-41.1, 174.4, "Hotel H wake up service, no pets, pool"},
	}
	for _, r := range rows {
		if _, err := e.Add([]float64{r.lat, r.lon}, r.text); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEngineQuickstart(t *testing.T) {
	e := newEngine(t, Config{})
	addFigure1(t, e)
	// The paper's running query.
	results, err := e.TopK(2, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if !strings.Contains(results[0].Object.Text, "Hotel G") {
		t.Errorf("first = %q, want Hotel G", results[0].Object.Text)
	}
	if !strings.Contains(results[1].Object.Text, "Hotel B") {
		t.Errorf("second = %q, want Hotel B", results[1].Object.Text)
	}
	if math.Abs(results[0].Dist-181.92) > 0.05 {
		t.Errorf("dist = %g", results[0].Dist)
	}
}

func TestEngineIDsAndGet(t *testing.T) {
	e := newEngine(t, Config{})
	id0, err := e.Add([]float64{1, 2}, "first thing")
	if err != nil {
		t.Fatal(err)
	}
	id1, err := e.Add([]float64{3, 4}, "second thing")
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || id1 != 1 {
		t.Errorf("ids = %d, %d", id0, id1)
	}
	obj, err := e.Get(id1)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Text != "second thing" || obj.Point[0] != 3 {
		t.Errorf("Get = %+v", obj)
	}
	if _, err := e.Get(99); !errors.Is(err, ErrUnknownID) {
		t.Errorf("unknown id err = %v", err)
	}
}

func TestEngineDelete(t *testing.T) {
	e := newEngine(t, Config{})
	addFigure1(t, e)
	// Delete Hotel G (ID 6), the paper query's top answer.
	if err := e.Delete(6); err != nil {
		t.Fatal(err)
	}
	results, err := e.TopK(2, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !strings.Contains(results[0].Object.Text, "Hotel B") {
		t.Errorf("after delete: %+v", results)
	}
	if err := e.Delete(6); !errors.Is(err, ErrDeleted) {
		t.Errorf("double delete err = %v", err)
	}
	if err := e.Delete(99); !errors.Is(err, ErrUnknownID) {
		t.Errorf("unknown delete err = %v", err)
	}
	if _, err := e.Get(6); !errors.Is(err, ErrDeleted) {
		t.Errorf("get deleted err = %v", err)
	}
	if got := e.Stats().Objects; got != 7 {
		t.Errorf("live objects = %d", got)
	}
}

func TestEngineDimValidation(t *testing.T) {
	e := newEngine(t, Config{})
	if _, err := e.Add([]float64{1, 2, 3}, "x"); err == nil {
		t.Error("3-d point accepted by 2-d engine")
	}
	if _, err := e.TopK(1, []float64{1}, "x"); err == nil {
		t.Error("1-d query accepted")
	}
	if _, err := e.TopKRanked(1, []float64{1}, "x"); err == nil {
		t.Error("1-d ranked query accepted")
	}
	// A 3-d engine works end to end.
	e3 := newEngine(t, Config{Dim: 3})
	if _, err := e3.Add([]float64{1, 2, 3}, "volumetric pixel"); err != nil {
		t.Fatal(err)
	}
	res, err := e3.TopK(1, []float64{1, 2, 2}, "volumetric")
	if err != nil || len(res) != 1 {
		t.Fatalf("3-d query: %v %v", res, err)
	}
	if math.Abs(res[0].Dist-1) > 1e-12 {
		t.Errorf("3-d dist = %g", res[0].Dist)
	}
}

func TestEngineRanked(t *testing.T) {
	e := newEngine(t, Config{})
	addFigure1(t, e)
	results, err := e.TopKRanked(5, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no ranked results")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score+1e-12 {
			t.Error("ranked scores not non-increasing")
		}
	}
	for _, r := range results {
		if r.IRScore <= 0 {
			t.Errorf("object %d has zero relevance", r.Object.ID)
		}
	}
	// Hotel D (pool only, close) should appear: disjunctive semantics.
	var seenD bool
	for _, r := range results {
		if strings.Contains(r.Object.Text, "Hotel D") {
			seenD = true
		}
	}
	if !seenD {
		t.Error("partially matching close object missing from ranked results")
	}
}

func TestEngineStatsAndQueryStats(t *testing.T) {
	e := newEngine(t, Config{SignatureBytes: 16})
	addFigure1(t, e)
	_, qs, err := e.TopKWithStats(2, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil {
		t.Fatal(err)
	}
	if qs.NodesLoaded == 0 || qs.ObjectsLoaded == 0 || qs.BlocksRandom == 0 {
		t.Errorf("query stats empty: %+v", qs)
	}
	s := e.Stats()
	if s.Objects != 8 || s.TreeHeight < 1 || s.IndexMB <= 0 || s.ObjectFileMB <= 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Vocabulary == 0 {
		t.Error("vocabulary not tracked")
	}
}

func TestEngineMultilevel(t *testing.T) {
	e := newEngine(t, Config{
		Multilevel:             true,
		ExpectedWordsPerObject: 5,
		ExpectedVocabulary:     1000,
		SignatureBytes:         8,
	})
	addFigure1(t, e)
	results, err := e.TopK(2, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !strings.Contains(results[0].Object.Text, "Hotel G") {
		t.Errorf("MIR² engine results: %+v", results)
	}
}

func TestEngineMultilevelRequiresStats(t *testing.T) {
	if _, err := NewEngine(Config{Multilevel: true}); err == nil {
		t.Error("multilevel engine without ExpectedWordsPerObject accepted")
	}
}

func TestEngineMatchesBruteForceRandomized(t *testing.T) {
	e := newEngine(t, Config{SignatureBytes: 8})
	rng := rand.New(rand.NewSource(61))
	vocab := []string{"coffee", "tea", "books", "vinyl", "ramen", "tacos", "bikes"}
	type rec struct {
		pt   []float64
		text string
	}
	var recs []rec
	for i := 0; i < 500; i++ {
		pt := []float64{rng.Float64() * 100, rng.Float64() * 100}
		n := 1 + rng.Intn(3)
		words := make([]string, n)
		for j := range words {
			words[j] = vocab[rng.Intn(len(vocab))]
		}
		text := fmt.Sprintf("shop %d %s", i, strings.Join(words, " "))
		recs = append(recs, rec{pt, text})
		if _, err := e.Add(pt, text); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 10; trial++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100}
		kw := vocab[rng.Intn(len(vocab))]
		got, err := e.TopK(7, q, kw)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		type cand struct {
			id   int
			dist float64
		}
		var cands []cand
		for i, r := range recs {
			if !strings.Contains(r.text, kw) {
				continue
			}
			d := math.Hypot(r.pt[0]-q[0], r.pt[1]-q[1])
			cands = append(cands, cand{i, d})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].dist != cands[b].dist {
				return cands[a].dist < cands[b].dist
			}
			return cands[a].id < cands[b].id
		})
		if len(cands) > 7 {
			cands = cands[:7]
		}
		if len(got) != len(cands) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(cands))
		}
		for i := range got {
			if got[i].Object.ID != uint64(cands[i].id) {
				t.Fatalf("trial %d rank %d: %d, want %d", trial, i, got[i].Object.ID, cands[i].id)
			}
		}
	}
}

func TestEngineEmptyQueries(t *testing.T) {
	e := newEngine(t, Config{})
	res, err := e.TopK(5, []float64{0, 0}, "anything")
	if err != nil || len(res) != 0 {
		t.Errorf("empty engine: %v %v", res, err)
	}
	ranked, err := e.TopKRanked(5, []float64{0, 0}, "anything")
	if err != nil || len(ranked) != 0 {
		t.Errorf("empty engine ranked: %v %v", ranked, err)
	}
	s := e.Stats()
	if s.Objects != 0 {
		t.Errorf("stats = %+v", s)
	}
}
