package spatialkeyword

import (
	"fmt"
	"time"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/irscore"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/storage"
)

// Streaming query API. Search, SearchArea, and SearchRanked return pull
// iterators over the same traversals that back TopK, TopKArea, and
// TopKRanked, so callers that merge several engines' result streams (see
// internal/shard) can consume exactly as many results as they need and
// inspect the next candidate's bound without loading it.

// SearchIter streams distance-first results in non-decreasing distance
// order, skipping deleted objects. It is valid until the engine's next
// write.
type SearchIter struct {
	e        *Engine
	it       *core.ResultIter
	keywords int
	start    time.Time
	results  int
	recorded bool
}

// Search starts an incremental distance-first query: the stream behind
// TopK. Pending adds are flushed first.
func (e *Engine) Search(point []float64, keywords ...string) (*SearchIter, error) {
	if err := e.Flush(); err != nil {
		return nil, err
	}
	if len(point) != e.dim {
		return nil, fmt.Errorf("spatialkeyword: point has %d dimensions, engine uses %d", len(point), e.dim)
	}
	return &SearchIter{e: e, it: e.tree.Search(geo.NewPoint(point...), keywords),
		keywords: len(keywords), start: time.Now()}, nil
}

// SearchArea starts an incremental area-distance query: the stream behind
// TopKArea. Objects inside the rectangle have distance zero.
func (e *Engine) SearchArea(lo, hi []float64, keywords ...string) (*SearchIter, error) {
	if err := e.Flush(); err != nil {
		return nil, err
	}
	area, err := e.validateArea(lo, hi)
	if err != nil {
		return nil, err
	}
	return &SearchIter{e: e, it: e.tree.SearchArea(area, keywords),
		keywords: len(keywords), start: time.Now()}, nil
}

// Next returns the next live object containing every keyword. ok is false
// when the index is exhausted.
func (s *SearchIter) Next() (Result, bool, error) {
	for {
		r, ok, err := s.it.Next()
		if err != nil || !ok {
			// A stream has no explicit Close; its one metrics record fires
			// when the traversal ends (exhaustion or error).
			if !s.recorded {
				s.recorded = true
				s.e.record("stream", 0, s.keywords, s.results, s.Stats(), time.Since(s.start), err)
			}
			return Result{}, false, err
		}
		if s.e.deleted[uint64(r.Object.ID)] {
			continue
		}
		s.results++
		return Result{
			Object: Object{ID: uint64(r.Object.ID), Point: r.Object.Point, Text: r.Object.Text},
			Dist:   r.Dist,
		}, true, nil
	}
}

// PeekBound returns a lower bound on the distance of every result the
// iterator can still produce; ok is false when it is exhausted.
func (s *SearchIter) PeekBound() (float64, bool) { return s.it.PeekBound() }

// SetTrace installs a traversal trace callback (see Engine.Explain for
// the event kinds). Call before the first Next; fn must not retain the
// event. A nil fn removes the callback. Used by internal/skql to fold
// the traversal walk into EXPLAIN ANALYZE output.
func (s *SearchIter) SetTrace(fn func(rtree.TraceEvent)) { s.it.SetTrace(fn) }

// Stats returns the traversal work counters accumulated so far (node and
// object accesses plus signature pruning counts; disk blocks are accounted
// at the device, see TopKWithStats).
func (s *SearchIter) Stats() QueryStats {
	st := s.it.Stats()
	return queryStatsOf(st.NodesLoaded, st.ObjectsLoaded, st.FalsePositives,
		st.EntriesPruned, st.NodesEnqueued, st.ObjectsEnqueued)
}

// CorpusStats describes the document corpus a ranked query scores against.
// A single engine uses its own vocabulary; a sharded engine injects
// corpus-wide statistics so every shard ranks with the same idf weights.
type CorpusStats struct {
	// NumDocs is the number of documents ever indexed (including deleted
	// ones, matching Engine semantics: deletions do not rewrite idf).
	NumDocs int
	// DocFreq returns the number of documents containing the word.
	DocFreq func(word string) int
}

// Corpus returns the engine's own corpus statistics: document count
// and per-word document frequencies from its vocabulary (both include
// deleted documents, matching idf semantics — deletions do not rewrite
// idf). The returned DocFreq reads the live vocabulary; like every
// read, it needs external exclusion against concurrent writers.
func (e *Engine) Corpus() CorpusStats {
	return CorpusStats{NumDocs: e.vocab.NumDocs(), DocFreq: e.vocab.DocFreq}
}

// RankedSearchIter streams general ranked results in non-increasing score
// order, skipping deleted objects. It is valid until the engine's next
// write.
type RankedSearchIter struct {
	e  *Engine
	it *core.RankedIter
}

// SearchRanked starts an incremental general ranked query: the stream
// behind TopKRanked, scored against the engine's own corpus statistics.
func (e *Engine) SearchRanked(point []float64, keywords ...string) (*RankedSearchIter, error) {
	return e.SearchRankedWith(CorpusStats{NumDocs: e.vocab.NumDocs(), DocFreq: e.vocab.DocFreq}, point, keywords...)
}

// SearchRankedWith is SearchRanked scoring against the given corpus
// statistics instead of the engine's own vocabulary.
func (e *Engine) SearchRankedWith(cs CorpusStats, point []float64, keywords ...string) (*RankedSearchIter, error) {
	if err := e.Flush(); err != nil {
		return nil, err
	}
	if len(point) != e.dim {
		return nil, fmt.Errorf("spatialkeyword: point has %d dimensions, engine uses %d", len(point), e.dim)
	}
	scorer := irscore.NewScorer(cs.NumDocs, cs.DocFreq).WithAnalyzer(e.analyzer())
	it := e.tree.SearchRanked(geo.NewPoint(point...), keywords, core.GeneralOptions{
		Scorer:       scorer,
		Combiner:     irscore.DistanceDiscount{Scale: 100},
		RequireMatch: true,
	})
	return &RankedSearchIter{e: e, it: it}, nil
}

// Next returns the next best-scoring live object. ok is false when the
// index is exhausted.
func (s *RankedSearchIter) Next() (RankedResult, bool, error) {
	for {
		r, ok, err := s.it.Next()
		if err != nil || !ok {
			return RankedResult{}, false, err
		}
		if s.e.deleted[uint64(r.Object.ID)] {
			continue
		}
		return RankedResult{
			Object:  Object{ID: uint64(r.Object.ID), Point: r.Object.Point, Text: r.Object.Text},
			Dist:    r.Dist,
			IRScore: r.IRScore,
			Score:   r.Score,
		}, true, nil
	}
}

// PeekBound returns an upper bound on the score of every result the
// iterator can still produce; ok is false when it is exhausted.
func (s *RankedSearchIter) PeekBound() (float64, bool) { return s.it.PeekBound() }

// Stats returns the traversal work counters accumulated so far (node and
// object accesses plus signature pruning counts; disk blocks are accounted
// at the device).
func (s *RankedSearchIter) Stats() QueryStats {
	st := s.it.Stats()
	return queryStatsOf(st.NodesLoaded, st.ObjectsLoaded, st.FalsePositives,
		st.EntriesPruned, st.NodesEnqueued, st.ObjectsEnqueued)
}

// NumObjects returns the number of rows ever appended to the engine's
// object file, including deleted ones. Valid object IDs are [0, NumObjects).
func (e *Engine) NumObjects() int { return e.store.NumObjects() }

// Scan visits every row of the object file in ID order — including deleted
// rows, which still carry the Text that feeds corpus statistics (idf). The
// caller can filter with IsDeleted. Pending adds are flushed first.
func (e *Engine) Scan(fn func(Object) error) error {
	if err := e.Flush(); err != nil {
		return err
	}
	return e.store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		return fn(Object{ID: uint64(o.ID), Point: o.Point, Text: o.Text})
	})
}

// IsDeleted reports whether the object with the given ID has been deleted.
// Unknown IDs are not deleted.
func (e *Engine) IsDeleted(id uint64) bool { return e.deleted[id] }

// MeterIO snapshots the engine's disk counters; the returned function
// reports the random and sequential block accesses performed since the
// snapshot. Concurrent queries on the same engine share the counters, so
// per-query attribution is exact only when the engine runs one query at a
// time.
func (e *Engine) MeterIO() func() (random, sequential uint64) {
	stop := e.MeterIOStats()
	return func() (uint64, uint64) {
		io := stop()
		return io.Random(), io.Sequential()
	}
}

// MeterIOStats is MeterIO returning the full device statistics, for
// in-module instrumentation that feeds a storage.CostModel (external
// importers cannot name the internal type; use MeterIO instead).
func (e *Engine) MeterIOStats() func() storage.Stats {
	m1 := storage.StartMeter(e.idxDisk)
	m2 := storage.StartMeter(e.objDisk)
	return func() storage.Stats {
		return m1.Stop().Add(m2.Stop())
	}
}
