package spatialkeyword

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"spatialkeyword/internal/storage"
)

// walConfig is the WAL-enabled configuration the crash tests use.
func walConfig() Config {
	return Config{SignatureBytes: 16, WAL: true}
}

// liveTexts is engineTexts minus deleted objects (Scan yields every row
// ever appended; replayed deletions must not come back as live).
func liveTexts(t *testing.T, e *Engine) []string {
	t.Helper()
	var texts []string
	if err := e.Scan(func(o Object) error {
		if !e.IsDeleted(o.ID) {
			texts = append(texts, o.Text)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(texts)
	return texts
}

// TestWALRecoversWithoutSave is the WAL's reason to exist: acknowledged
// mutations survive a crash even though no Save ran after them.
func TestWALRecoversWithoutSave(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(walConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Generation() != 1 {
		t.Fatalf("WAL engine starts at generation %d, want 1", eng.Generation())
	}
	var oracle []string
	for i := 0; i < 10; i++ {
		text := fmt.Sprintf("unsaved %d poi", i)
		if _, err := eng.Add([]float64{float64(i), float64(i)}, text); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, text)
	}
	if err := eng.Delete(3); err != nil {
		t.Fatal(err)
	}
	oracle = append(oracle[:3], oracle[4:]...)
	sort.Strings(oracle)
	// Simulated crash: never Save, just drop the files.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenEngine(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	info := reopened.WALInfo()
	if !info.Enabled {
		t.Fatal("reopened engine has no WAL")
	}
	if info.ReplayedRecords != 11 {
		t.Fatalf("replayed %d records, want 11 (10 adds + 1 delete)", info.ReplayedRecords)
	}
	if info.TornTails != 0 {
		t.Fatalf("clean log reported %d torn tails", info.TornTails)
	}
	if got := liveTexts(t, reopened); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("recovered texts:\ngot:  %v\nwant: %v", got, oracle)
	}
	res, err := reopened.TopK(20, []float64{5, 5}, "poi")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(oracle) {
		t.Fatalf("query found %d objects, want %d", len(res), len(oracle))
	}
}

// TestWALReplayDeterministic opens the same crashed directory twice and
// requires byte-identical logs and identical state and query results — the
// headline replay-determinism guarantee.
func TestWALReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(walConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := eng.Add([]float64{float64(i % 7), float64(i % 5)}, fmt.Sprintf("det %d poi", i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint64{2, 9, 17} {
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName(1))

	type snapshot struct {
		texts   []string
		results []Result
		replay  []WALOp
		raw     []byte
	}
	open := func() snapshot {
		e, err := OpenEngine(dir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		res, err := e.TopK(25, []float64{3, 2}, "poi")
		if err != nil {
			t.Fatal(err)
		}
		s := snapshot{texts: liveTexts(t, e), results: res, replay: e.WALReplay()}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		s.raw = raw
		return s
	}
	s1, s2 := open(), open()
	if !reflect.DeepEqual(s1.texts, s2.texts) {
		t.Fatalf("replays recovered different objects:\n%v\n%v", s1.texts, s2.texts)
	}
	if !reflect.DeepEqual(s1.results, s2.results) {
		t.Fatal("replays answered the same query differently")
	}
	if !reflect.DeepEqual(s1.replay, s2.replay) {
		t.Fatal("replays reported different WAL records")
	}
	if !reflect.DeepEqual(s1.raw, s2.raw) {
		t.Fatal("log bytes changed across opens of a clean log")
	}
}

// TestWALTornTailRecovered corrupts the last record on disk and checks that
// recovery reports exactly one torn tail, keeps every earlier record, and
// physically truncates so the next open is clean.
func TestWALTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(walConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	var oracle []string
	for i := 0; i < 6; i++ {
		text := fmt.Sprintf("torn %d poi", i)
		if _, err := eng.Add([]float64{float64(i), 0}, text); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, text)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip the last data byte of the log — the tail of record 6's payload —
	// so its CRC no longer matches: a torn final append.
	walPath := filepath.Join(dir, walName(1))
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	last := len(raw) - 1
	for last >= 0 && raw[last] == 0 {
		last--
	}
	if last < 0 {
		t.Fatal("log file is all zeros")
	}
	raw[last] ^= 0x01
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	oracle = oracle[:5]
	sort.Strings(oracle)
	first, err := OpenEngine(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	info := first.WALInfo()
	if info.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", info.TornTails)
	}
	if info.ReplayedRecords != 5 {
		t.Fatalf("replayed %d records, want 5", info.ReplayedRecords)
	}
	if got := engineTexts(t, first); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("recovered texts:\ngot:  %v\nwant: %v", got, oracle)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn tail was physically truncated: a second open is clean.
	second, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	info = second.WALInfo()
	if info.TornTails != 0 {
		t.Fatalf("second open still torn (%d)", info.TornTails)
	}
	if info.ReplayedRecords != 5 {
		t.Fatalf("second open replayed %d records, want 5", info.ReplayedRecords)
	}
}

// TestKillDuringSaveWithWALLosesNothing re-runs the kill-during-save
// acceptance loop with a WAL. The oracle is strictly stronger than the
// checkpoint-only version: every acknowledged mutation survives whether or
// not the interrupted Save committed.
func TestKillDuringSaveWithWALLosesNothing(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(walConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	var oracle []string
	// A WAL save touches up to 6 commit-critical hooked ops (2 snapshot
	// copies, generation manifest, staged WAL create, tmp manifest write,
	// rename) plus up to 4 best-effort prunes; rotating 1..10 covers every
	// window including "crashed after the commit point".
	const maxOps = 10
	for iter := 0; iter < 100; iter++ {
		text := fmt.Sprintf("iter %d poi", iter)
		if _, err := eng.Add([]float64{float64(iter % 13), float64(iter % 7)}, text); err != nil {
			t.Fatalf("iter %d: add: %v", iter, err)
		}
		oracle = append(oracle, text)
		restore := crashFS(iter%maxOps + 1)
		saveErr := eng.Save()
		restore()
		if err := eng.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		eng, err = OpenEngine(dir)
		if err != nil {
			t.Fatalf("iter %d (save err %v): reopen: %v", iter, saveErr, err)
		}
		want := append([]string(nil), oracle...)
		sort.Strings(want)
		if got := engineTexts(t, eng); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d (save err %v): recovered %d objects, acknowledged %d\ngot:  %v\nwant: %v",
				iter, saveErr, len(got), len(want), got, want)
		}
		res, err := eng.TopK(len(want)+1, []float64{5, 5}, "poi")
		if err != nil {
			t.Fatalf("iter %d: query after recovery: %v", iter, err)
		}
		if len(res) != len(want) {
			t.Fatalf("iter %d: query found %d objects, acknowledged %d", iter, len(res), len(want))
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKillDuringAppendAlwaysRecovers kills the write path below the log: the
// WAL device starts failing writes at a rotating operation, mid-append. A
// reopen must recover exactly the acknowledged mutations — never an
// unacknowledged one, never fewer.
func TestKillDuringAppendAlwaysRecovers(t *testing.T) {
	startGoroutines := runtime.NumGoroutine()
	dir := t.TempDir()
	eng, err := NewDurableEngine(walConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	var oracle []string
	for iter := 0; iter < 100; iter++ {
		n := iter%4 + 1
		var writes int
		if !setDeviceFault(eng.walFile, func(op storage.Op, id storage.BlockID) error {
			if op != storage.OpWrite {
				return nil
			}
			writes++
			if writes >= n {
				return &storage.FaultError{Kind: storage.KindWriteError, Op: op, Block: id}
			}
			return nil
		}) {
			t.Fatal("WAL device refused fault hook")
		}
		for j := 0; j < 3; j++ {
			text := fmt.Sprintf("iter %d rec %d poi", iter, j)
			if _, err := eng.Add([]float64{float64(iter % 13), float64(j)}, text); err == nil {
				// Acknowledged: durable, must survive the crash.
				oracle = append(oracle, text)
			} else if !storage.IsIOFault(err) {
				t.Fatalf("iter %d: add failed without fault provenance: %v", iter, err)
			}
		}
		setDeviceFault(eng.walFile, nil)
		// Simulated process death; Close skips the WAL sync once broken.
		if err := eng.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		eng, err = OpenEngine(dir)
		if err != nil {
			t.Fatalf("iter %d: reopen after append crash: %v", iter, err)
		}
		want := append([]string(nil), oracle...)
		sort.Strings(want)
		if got := engineTexts(t, eng); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: recovered %d objects, acknowledged %d\ngot:  %v\nwant: %v",
				iter, len(got), len(want), got, want)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && runtime.NumGoroutine() > startGoroutines; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > startGoroutines {
		t.Fatalf("goroutine leak: %d at start, %d after the crash loop", startGoroutines, n)
	}
}

// TestWALSaveRotatesAndPrunes checks the rotation protocol: Save truncates
// the live log (the new generation starts empty), retains the previous
// generation's log for pinned readers, and prunes generation G-2's.
func TestWALSaveRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(walConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	addN := func(n int, label string) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := eng.Add([]float64{float64(i), float64(n)}, fmt.Sprintf("%s %d poi", label, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	addN(5, "gen1")
	if err := eng.Save(); err != nil { // commits gen 2
		t.Fatal(err)
	}
	addN(3, "gen2")
	if err := eng.Save(); err != nil { // commits gen 3, prunes gen 1
		t.Fatal(err)
	}
	addN(2, "gen3")
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatalf("wal.1.db not pruned: %v", err)
	}
	for _, gen := range []uint64{2, 3} {
		if _, err := os.Stat(filepath.Join(dir, walName(gen))); err != nil {
			t.Fatalf("wal.%d.db missing: %v", gen, err)
		}
	}
	cur, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info := cur.WALInfo(); info.ReplayedRecords != 2 {
		t.Fatalf("current generation replayed %d records, want 2 (log rotated at save)", info.ReplayedRecords)
	}
	if got := len(engineTexts(t, cur)); got != 10 {
		t.Fatalf("current generation has %d objects, want 10", got)
	}
	cur.Close()
	// A reader pinned at generation 2 replays generation 2's retained log.
	old, err := OpenEngineAt(dir, 2)
	if err != nil {
		t.Fatalf("open pinned generation with wal: %v", err)
	}
	defer old.Close()
	if info := old.WALInfo(); info.ReplayedRecords != 3 {
		t.Fatalf("pinned generation replayed %d records, want 3", info.ReplayedRecords)
	}
	if got := len(engineTexts(t, old)); got != 8 {
		t.Fatalf("pinned generation has %d objects, want 8", got)
	}
}

// TestWALBrokenEngineRefusesMutationsAndSave checks the sticky-failure
// contract: once an append fails, further mutations and Save are refused
// (the in-memory state may no longer match the durable log) until reopen.
func TestWALBrokenEngineRefusesMutationsAndSave(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(walConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Add([]float64{1, 1}, "pre fault poi"); err != nil {
		t.Fatal(err)
	}
	if !setDeviceFault(eng.walFile, func(op storage.Op, id storage.BlockID) error {
		if op == storage.OpWrite {
			return &storage.FaultError{Kind: storage.KindWriteError, Op: op, Block: id}
		}
		return nil
	}) {
		t.Fatal("WAL device refused fault hook")
	}
	if _, err := eng.Add([]float64{2, 2}, "doomed"); err == nil {
		t.Fatal("add over failing WAL device succeeded")
	} else if !storage.IsIOFault(err) {
		t.Fatalf("append error lost fault provenance: %v", err)
	}
	setDeviceFault(eng.walFile, nil)
	// The device is healthy again, but the engine must stay read-only.
	if _, err := eng.Add([]float64{3, 3}, "after"); err == nil {
		t.Fatal("add after WAL break succeeded")
	}
	if err := eng.Delete(0); err == nil {
		t.Fatal("delete after WAL break succeeded")
	}
	if err := eng.Save(); err == nil {
		t.Fatal("save after WAL break succeeded")
	}
	// Reads still work.
	if _, err := eng.Get(0); err != nil {
		t.Fatalf("read on a WAL-broken engine: %v", err)
	}
}
